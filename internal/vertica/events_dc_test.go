package vertica

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// collectCol returns one string column of a system-table read.
func collectCol(t *testing.T, s *Session, query string, col int) []string {
	t.Helper()
	res, err := s.Execute(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r[col].S)
	}
	return out
}

// TestDCQueryRequestsSurviveCrash is the tentpole's acceptance scenario: a
// durable cluster spools query history to disk as it happens; a simulated
// kill-9 mid-spool (torn frame on disk) loses nothing that was acked, and a
// reopened cluster answers "what ran before the crash" from
// v_monitor.dc_query_requests.
func TestDCQueryRequestsSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	cache := storage.NewContainerCache(0)
	c := durableCluster(t, dir, cache)
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	s.MustExecute("CREATE TABLE crashq (id INTEGER, v VARCHAR) SEGMENTED BY HASH(id)")
	s.MustExecute("INSERT INTO crashq VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	for i := 0; i < 8; i++ {
		s.MustExecute(fmt.Sprintf("SELECT v FROM crashq WHERE id = %d", i%3+1))
	}

	// Everything acked so far must already be on disk.
	preCrash := collectCol(t, s, "SELECT request FROM v_monitor.dc_query_requests", 0)
	if len(preCrash) < 8 {
		t.Fatalf("dc_query_requests has %d records before the crash, want >= 8", len(preCrash))
	}

	// Kill the spool mid-frame: the next append writes half a frame and
	// fails, and every spool write after that fails too. Queries must keep
	// working — observability never takes the database down.
	c.DataCollector().FailAfterRecords(0)
	for i := 0; i < 4; i++ {
		s.MustExecute("SELECT COUNT(*) FROM crashq")
	}
	if got := c.Obs().Counter("dc.errors"); got == 0 {
		t.Fatal("crashed spool recorded no dc.errors")
	}
	s.Close()
	_ = c.Close()

	// Reopen the same directory: the torn tail is truncated away and every
	// pre-crash request is still there.
	c2 := durableCluster(t, dir, cache)
	defer c2.Close()
	s2, err := c2.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recovered := make(map[string]int)
	for _, q := range collectCol(t, s2, "SELECT request FROM v_monitor.dc_query_requests", 0) {
		recovered[q]++
	}
	for _, q := range preCrash {
		if recovered[q] == 0 {
			t.Fatalf("request %q was acked before the crash but lost on reopen", q)
		}
		recovered[q]--
	}

	// The reopened spool appends again: new queries become new history.
	s2.MustExecute("SELECT v FROM crashq WHERE id = 1")
	after := collectCol(t, s2, "SELECT request FROM v_monitor.dc_query_requests", 0)
	if len(after) <= len(preCrash) {
		t.Fatalf("reopened spool did not grow: %d -> %d", len(preCrash), len(after))
	}
}

// TestDCRetentionPolicySQL drives retention through the SQL surface:
// SET_DATA_COLLECTOR_POLICY caps a component's disk budget, the oldest
// segments fall off first, and v_monitor.data_collector reports the policy.
func TestDCRetentionPolicySQL(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, storage.NewContainerCache(0))
	defer c.Close()
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.MustExecute("SELECT SET_DATA_COLLECTOR_POLICY('query_requests', 4, '')")
	res := s.MustExecute("SELECT GET_DATA_COLLECTOR_POLICY('query_requests')")
	if v, _ := res.Value(); !strings.Contains(v.S, "max 4 KB") {
		t.Fatalf("GET_DATA_COLLECTOR_POLICY = %q", v.S)
	}

	s.MustExecute("CREATE TABLE ret (id INTEGER, v VARCHAR) SEGMENTED BY HASH(id)")
	pad := strings.Repeat("x", 120)
	first := fmt.Sprintf("SELECT id FROM ret WHERE v = 'first-%s'", pad)
	s.MustExecute(first)
	for i := 0; i < 200; i++ {
		s.MustExecute(fmt.Sprintf("SELECT id FROM ret WHERE v = 'fill-%03d-%s'", i, pad))
	}

	reqs := collectCol(t, s, "SELECT request FROM v_monitor.dc_query_requests", 0)
	for _, q := range reqs {
		if q == first {
			t.Fatal("oldest request survived a 4 KB budget that must have evicted it")
		}
	}
	if want := fmt.Sprintf("SELECT id FROM ret WHERE v = 'fill-%03d-%s'", 199, pad); reqs[len(reqs)-1] != want {
		t.Fatalf("newest request missing: tail is %q", reqs[len(reqs)-1])
	}

	res = s.MustExecute("SELECT bytes_on_disk, policy_max_kb FROM v_monitor.data_collector WHERE component = 'query_requests'")
	if len(res.Rows) != 1 {
		t.Fatalf("data_collector rows: %v", res.Rows)
	}
	// Budget plus one active segment of slack: retention only drops closed
	// segments, so the bound is max_kb plus the segment target.
	if got := res.Rows[0][0].I; got > 8<<10 {
		t.Fatalf("query_requests spool is %d bytes under a 4 KB policy", got)
	}
	if res.Rows[0][1].I != 4 {
		t.Fatalf("policy_max_kb = %d, want 4", res.Rows[0][1].I)
	}
}

// TestQueryEventsSeededWorkload seeds a workload that provokes four distinct
// typed engine events and checks they surface in v_monitor.query_events,
// inline in PROFILE, and as predictions in EXPLAIN.
func TestQueryEventsSeededWorkload(t *testing.T) {
	c, err := NewCluster(Config{
		Nodes:            2,
		JoinBuildRows:    1, // any hash-join build side trips JOIN_BUILD_SIDE_LARGE
		NoZoneMapPruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.MustExecute("CREATE TABLE ev_l (id INTEGER, v INTEGER) SEGMENTED BY HASH(id)")
	s.MustExecute("CREATE TABLE ev_r (id INTEGER, tag VARCHAR) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 300; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i*2))
	}
	s.MustExecute("INSERT INTO ev_l VALUES " + strings.Join(vals, ", "))
	s.MustExecute("INSERT INTO ev_r VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}

	// ZONEMAP_PRUNE_SKIPPED: a prunable predicate with pruning disabled.
	s.MustExecute("SELECT v FROM ev_l WHERE id >= 250")
	// GROUP_BY_FALLBACK_ROW_PATH + JOIN_BUILD_SIDE_LARGE: aggregate over a join.
	s.MustExecute("SELECT COUNT(*) FROM ev_l JOIN ev_r ON ev_l.id = ev_r.id GROUP BY tag")
	// SLOW_QUERY: a 1ns session threshold makes any statement slow.
	s.MustExecute("SET SESSION SLOW_QUERY_THRESHOLD = '1ns'")
	s.MustExecute("SELECT COUNT(*) FROM ev_l")
	s.MustExecute("SET SESSION SLOW_QUERY_THRESHOLD = '0'")

	types := make(map[string]int)
	for _, ty := range collectCol(t, s, "SELECT event_type FROM v_monitor.query_events", 0) {
		types[ty]++
	}
	for _, want := range []string{
		"ZONEMAP_PRUNE_SKIPPED", "GROUP_BY_FALLBACK_ROW_PATH", "JOIN_BUILD_SIDE_LARGE", "SLOW_QUERY",
	} {
		if types[want] == 0 {
			t.Errorf("query_events missing %s (got %v)", want, types)
		}
	}
	if len(types) < 4 {
		t.Fatalf("query_events has %d distinct types, want >= 4: %v", len(types), types)
	}

	// Monitoring reads must not raise events about themselves.
	before := len(collectCol(t, s, "SELECT event_type FROM v_monitor.query_events", 0))
	s.MustExecute("SELECT event_type FROM v_monitor.query_events")
	if after := len(collectCol(t, s, "SELECT event_type FROM v_monitor.query_events", 0)); after != before {
		t.Fatalf("reading query_events raised %d events", after-before)
	}

	// PROFILE surfaces the statement's own events inline, before "total".
	res := s.MustExecute("PROFILE SELECT COUNT(*) FROM ev_l JOIN ev_r ON ev_l.id = ev_r.id GROUP BY tag")
	var evRows []string
	for _, r := range res.Rows {
		if strings.HasPrefix(r[0].S, "event: ") {
			evRows = append(evRows, r[0].S)
		}
	}
	if len(evRows) == 0 {
		t.Fatalf("PROFILE has no event rows: %v", res.Rows)
	}
	if last := res.Rows[len(res.Rows)-1][0].S; last != "total" {
		t.Fatalf("last PROFILE row = %q, want total", last)
	}

	// EXPLAIN predicts the events the plan can already prove.
	res = s.MustExecute("EXPLAIN SELECT COUNT(*) FROM ev_l JOIN ev_r ON ev_l.id = ev_r.id GROUP BY tag")
	found := false
	for _, r := range res.Rows {
		if r[1].S == "event" && r[2].S == "GROUP_BY_FALLBACK_ROW_PATH" {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN predicts no GROUP_BY_FALLBACK_ROW_PATH event: %v", res.Rows)
	}
	res = s.MustExecute("EXPLAIN SELECT v FROM ev_l WHERE id >= 250")
	found = false
	for _, r := range res.Rows {
		if r[1].S == "event" && r[2].S == "ZONEMAP_PRUNE_SKIPPED" {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN predicts no ZONEMAP_PRUNE_SKIPPED event: %v", res.Rows)
	}
}

// TestQueryEventsPoolQueueWait provokes POOL_QUEUE_WAIT with a single-slot
// pool and statements that hold their slot long enough to guarantee a queue.
func TestQueryEventsPoolQueueWait(t *testing.T) {
	c := testCluster(t, 1)
	setup := sess(t, c, 0)
	setup.MustExecute("CREATE TABLE pq (id INTEGER)")
	setup.MustExecute("INSERT INTO pq VALUES (1)")
	setup.MustExecute("CREATE RESOURCE POOL tiny MAXCONCURRENCY 1 MAXQUEUEDEPTH NONE QUEUETIMEOUT '30s'")
	c.RegisterUDx("HOLD", func(args []types.Value, _ map[string]string) (types.Value, error) {
		time.Sleep(2 * time.Millisecond)
		return args[0], nil
	})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.Connect(0)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			if _, err := s.Execute("SET RESOURCE_POOL = tiny"); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 5; j++ {
				if _, err := s.Execute("SELECT HOLD(id) FROM pq"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	mon := sess(t, c, 0)
	res := mon.MustExecute("SELECT event_type, value FROM v_monitor.query_events")
	n := 0
	for _, r := range res.Rows {
		if r[0].S == "POOL_QUEUE_WAIT" {
			n++
			if r[1].I <= 0 {
				t.Fatalf("POOL_QUEUE_WAIT with non-positive wait: %v", r)
			}
		}
	}
	if n == 0 {
		t.Fatal("no POOL_QUEUE_WAIT event despite guaranteed contention on a 1-slot pool")
	}
}
