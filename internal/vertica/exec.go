package vertica

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vsfabric/internal/catalog"
	"vsfabric/internal/expr"
	"vsfabric/internal/obs"
	"vsfabric/internal/sim"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vexec"
	"vsfabric/internal/vhash"
	"vsfabric/internal/vsql"
)

// visibility wraps the storage read context for the executor.
type visibility struct{ v storage.Visibility }

func snapshotVis(c *Cluster) storage.Visibility {
	return storage.Visibility{Epoch: c.txm.LastEpoch()}
}

// scanStats accumulates the per-query resource accounting that becomes one
// QueryFlowEv for the performance layer, plus the optional per-operator
// profile a PROFILE statement collects.
type scanStats struct {
	scanRows map[string]float64
	shuffle  map[[2]string]float64
	prof     *queryProfile // nil unless the query runs under PROFILE

	// Planner/pruning accounting for v_monitor.query_plans (see recordPlan).
	table       string // anchor relation; "" when no base table was scanned
	joinOrder   string // chosen join order; "" for single-table queries
	estRows     int64  // planner cardinality estimate (0 = derive from scanRows)
	pushdown    string // "count", "group-by", or "" for a plain scan
	vectorized  bool   // the batch pipeline ran (vs row-at-a-time reference)
	contScanned int64  // ROS containers decoded
	contPruned  int64  // ROS containers skipped via zone maps
	contNoStats int64  // ROS containers that could not be pruned for lack of stats
}

func newScanStats() *scanStats {
	return &scanStats{scanRows: make(map[string]float64), shuffle: make(map[[2]string]float64)}
}

// executeSelect plans and runs a SELECT.
func (s *Session) executeSelect(st *vsql.Select) (*Result, error) {
	return s.executeSelectProf(st, nil)
}

// executeSelectProf is executeSelect with optional operator profiling.
func (s *Session) executeSelectProf(st *vsql.Select, qp *queryProfile) (*Result, error) {
	// Resolve the read snapshot: AT EPOCH pins it; otherwise read-committed.
	vis := s.vis().v
	if st.AtEpoch != nil && !st.AtEpoch.Latest {
		if st.AtEpoch.N > s.cluster.txm.LastEpoch() {
			return nil, fmt.Errorf("vertica: epoch %d has not closed yet (last epoch %d)", st.AtEpoch.N, s.cluster.txm.LastEpoch())
		}
		vis.Epoch = st.AtEpoch.N
	}
	// Pin the snapshot for the statement's duration so a concurrent moveout
	// cannot purge rows this scan is entitled to see (the AHM stays at or
	// below vis.Epoch until the scan finishes).
	release := s.cluster.txm.PinEpoch(vis.Epoch)
	defer release()
	if err := s.bindSelectFuncs(st); err != nil {
		return nil, err
	}

	stats := newScanStats()
	stats.prof = qp
	if res, ok, err := s.tryCountPushdown(st, vis, stats); err != nil {
		return nil, err
	} else if ok {
		s.recordQuery(res.Rows, stats)
		s.recordPlan(stats, len(res.Rows), vis.Epoch)
		res.Epoch = vis.Epoch
		return res, nil
	}
	if res, ok, err := s.tryVectorizedAgg(st, vis, stats, qp); err != nil {
		return nil, err
	} else if ok {
		s.recordQuery(res.Rows, stats)
		s.recordPlan(stats, len(res.Rows), vis.Epoch)
		res.Epoch = vis.Epoch
		return res, nil
	}
	if hasAggregates(st) || len(st.GroupBy) > 0 {
		// The vectorized hash-aggregation pushdown declined: this aggregate
		// runs on the row-at-a-time reference path. Say why.
		detail := "aggregation shape not eligible for vectorized kernels"
		switch {
		case s.cluster.cfg.RowAtATimeScans:
			detail = "RowAtATimeScans ablation forces the row-at-a-time path"
		case len(st.Joins) > 0:
			detail = "aggregate over a join runs row-at-a-time"
		case st.From != nil && !baseTableOnly(s, st.From):
			detail = "aggregate over a non-base relation runs row-at-a-time"
		}
		s.raiseEvent(obs.EvGroupByFallback, detail, 0, 0)
	}
	rows, schema, err := s.sourceRows(st, vis, stats)
	if err != nil {
		return nil, err
	}
	projStart := profClock(qp)
	out, outSchema, err := project(st, rows, schema, qp)
	if err != nil {
		return nil, err
	}
	if qp != nil {
		qp.add(opStat{
			name: "project", rowsIn: int64(len(rows)), rowsOut: int64(len(out)),
			dur: time.Since(projStart), detail: projectDetail(st),
		})
		if st.Limit >= 0 {
			qp.add(opStat{
				name: "limit", rowsIn: int64(len(out)), rowsOut: int64(len(out)),
				detail: fmt.Sprintf("LIMIT %d", st.Limit),
			})
		}
	}
	s.recordQuery(out, stats)
	s.recordPlan(stats, len(out), vis.Epoch)
	return &Result{Schema: outSchema, Rows: out, Epoch: vis.Epoch}, nil
}

// profClock reads the clock only when profiling, keeping the common path
// free of time syscalls.
func profClock(qp *queryProfile) time.Time {
	if qp == nil {
		return time.Time{}
	}
	return time.Now()
}

// projectDetail summarizes what the projection operator did.
func projectDetail(st *vsql.Select) string {
	var parts []string
	if hasAggregates(st) {
		parts = append(parts, "aggregate")
	}
	if len(st.GroupBy) > 0 {
		parts = append(parts, fmt.Sprintf("group by %d cols", len(st.GroupBy)))
	}
	if len(st.OrderBy) > 0 {
		parts = append(parts, fmt.Sprintf("order by %d keys", len(st.OrderBy)))
	}
	if len(parts) == 0 {
		return fmt.Sprintf("%d items", len(st.Items))
	}
	return strings.Join(parts, ", ")
}

// tryCountPushdown answers SELECT COUNT(*) FROM basetable [WHERE ...]
// entirely from the vectorized scan's selection-vector popcounts, without
// materializing a single row — the engine half of the connector's COUNT
// pushdown (§3.1.1). Queries with joins, grouping, views, or system tables
// fall through to the general path.
func (s *Session) tryCountPushdown(st *vsql.Select, vis storage.Visibility, stats *scanStats) (*Result, bool, error) {
	if !countPushdownEligible(s, st) {
		return nil, false, nil
	}
	it := st.Items[0]
	tbl, ok := s.cluster.cat.Table(st.From.Name)
	if !ok {
		return nil, false, nil // let the general path report the error
	}
	stats.pushdown = "count"
	_, count, _, err := s.scanTable(tbl, st.Where, vis, stats, scanOpts{limit: -1, countOnly: true})
	if err != nil {
		return nil, false, err
	}
	colName := it.Alias
	if colName == "" {
		colName = "count"
	}
	rows := []types.Row{{types.IntValue(count)}}
	if st.Limit >= 0 && int64(len(rows)) > st.Limit {
		rows = rows[:st.Limit]
	}
	return &Result{
		Schema: types.Schema{Cols: []types.Column{{Name: colName, T: types.Int64}}},
		Rows:   rows,
	}, true, nil
}

// countPushdownEligible reports whether a SELECT is exactly COUNT(*) over a
// base table — the shape tryCountPushdown (and EXPLAIN) answers from
// selection-vector popcounts.
func countPushdownEligible(s *Session, st *vsql.Select) bool {
	if s.cluster.cfg.RowAtATimeScans {
		return false // ablation knob: exercise the reference path
	}
	if st.From == nil || len(st.Joins) > 0 || len(st.GroupBy) > 0 || len(st.Items) != 1 {
		return false
	}
	it := st.Items[0]
	if it.Agg != vsql.AggCount || it.Arg != nil {
		return false
	}
	return baseTableOnly(s, st.From)
}

// baseTableOnly reports whether tr names a catalog base table (not a system
// table or a view).
func baseTableOnly(s *Session, tr *vsql.TableRef) bool {
	name := strings.ToLower(tr.Name)
	if strings.HasPrefix(name, "v_catalog.") || strings.HasPrefix(name, "v_monitor.") {
		return false
	}
	if _, isView := s.cluster.cat.View(tr.Name); isView {
		return false
	}
	return true
}

func (s *Session) bindSelectFuncs(st *vsql.Select) error {
	for _, it := range st.Items {
		if it.Expr != nil {
			if err := s.cluster.bindFuncs(it.Expr); err != nil {
				return err
			}
		}
		if it.Arg != nil {
			if err := s.cluster.bindFuncs(it.Arg); err != nil {
				return err
			}
		}
	}
	if st.Where != nil {
		return s.cluster.bindFuncs(st.Where)
	}
	return nil
}

// sourceRows produces the filtered input row set of a SELECT (before
// projection/aggregation): base table scan with hash-range pushdown, view
// expansion, system tables, and the optional equi-join pipeline.
func (s *Session) sourceRows(st *vsql.Select, vis storage.Visibility, stats *scanStats) ([]types.Row, types.Schema, error) {
	if st.From == nil {
		// FROM-less SELECT evaluates items once against an empty row.
		return []types.Row{{}}, types.Schema{}, nil
	}
	if len(st.Joins) > 0 {
		return s.joinedRows(st, vis, stats)
	}
	opts := scanOpts{limit: -1}
	// Late materialization: only the columns the SELECT list, aggregate
	// arguments, and GROUP BY actually touch are materialized from the
	// column store. The WHERE clause needs no materialization at all —
	// it is evaluated on the column vectors.
	opts.needCols = neededColumns(st)
	// LIMIT pushes into the scan only when each scanned row maps 1:1 to
	// an output row: no aggregation, no grouping, no reordering.
	if !hasAggregates(st) && len(st.GroupBy) == 0 && len(st.OrderBy) == 0 && st.Limit >= 0 {
		opts.limit = st.Limit
	}
	// relationRows applies the WHERE clause during the scan.
	return s.relationRows(st.From, st.Where, vis, stats, opts)
}

// joinedRows runs the planner-ordered join pipeline: each step hash-joins the
// accumulated left side with the next relation (vectorized when the inputs
// convert to column vectors), then the residual WHERE filters the result.
// The WHERE clause may reference both sides, so join inputs scan unfiltered.
func (s *Session) joinedRows(st *vsql.Select, vis storage.Visibility, stats *scanStats) ([]types.Row, types.Schema, error) {
	plan := s.planJoins(st)
	stats.joinOrder = plan.orderString()
	stats.estRows = plan.estOut
	steps := plan.steps

	// lref qualifies the left side's column names at the first join only;
	// later steps see an already-qualified accumulated schema.
	lref := st.From
	var rows []types.Row
	var schema types.Schema
	// preRight carries a right side already scanned by the batch-native
	// attempt into the general loop, so a fallback never scans it twice.
	var preRight []types.Row
	var preRightSchema types.Schema
	havePre := false

	// Batch-native first step: when the anchor is a base table, its columnar
	// batches feed the typed join table directly and only matched pairs box
	// into rows — the probe side never materializes. Ineligible shapes fall
	// through to the materialize-then-join path below.
	if len(steps) > 0 && !s.cluster.cfg.RowAtATimeScans && baseTableOnly(s, st.From) {
		if tbl, ok := s.cluster.cat.Table(st.From.Name); ok {
			step := steps[0]
			right, rightSchema, err := s.relationRows(&step.clause.Right, nil, vis, stats, scanOpts{limit: -1})
			if err != nil {
				return nil, types.Schema{}, err
			}
			joinStart := profClock(stats.prof)
			joined, joinedSchema, nLeft, ok, err := s.batchJoinStep(tbl, st.From, &step.clause.Right, step.clause, step.buildLeft, right, rightSchema, vis, stats)
			if err != nil {
				return nil, types.Schema{}, err
			}
			if ok {
				stats.vectorized = true
				buildRows := int64(len(right))
				if step.buildLeft {
					buildRows = nLeft
				}
				s.raiseJoinBuildEvent(buildRows, buildSideName(step.buildLeft), step.clause.LeftCol, step.clause.RightCol)
				if stats.prof != nil {
					build := "right"
					if step.buildLeft {
						build = "left"
					}
					stats.prof.add(opStat{
						name: "join", rowsIn: nLeft + int64(len(right)), rowsOut: int64(len(joined)),
						vecRows: nLeft + int64(len(right)), dur: time.Since(joinStart),
						detail: fmt.Sprintf("vectorized hash join %s = %s, build %s side, batch-native probe", step.clause.LeftCol, step.clause.RightCol, build),
					})
				}
				rows, schema = joined, joinedSchema
				lref = nil
				steps = steps[1:]
			} else {
				preRight, preRightSchema = right, rightSchema
				havePre = true
			}
		}
	}
	if lref != nil {
		var err error
		rows, schema, err = s.relationRows(st.From, nil, vis, stats, scanOpts{limit: -1})
		if err != nil {
			return nil, types.Schema{}, err
		}
	}
	if stats.table == "" {
		stats.table = st.From.Name
	}
	for _, step := range steps {
		right, rightSchema := preRight, preRightSchema
		if havePre {
			havePre = false
		} else {
			var err error
			right, rightSchema, err = s.relationRows(&step.clause.Right, nil, vis, stats, scanOpts{limit: -1})
			if err != nil {
				return nil, types.Schema{}, err
			}
		}
		joinStart := profClock(stats.prof)
		joined, joinedSchema, vec, err := s.hashJoinStep(rows, schema, lref, right, rightSchema, &step.clause.Right, step.clause, step.buildLeft)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if vec {
			stats.vectorized = true
		}
		buildRows := int64(len(right))
		if step.buildLeft {
			buildRows = int64(len(rows))
		}
		s.raiseJoinBuildEvent(buildRows, buildSideName(step.buildLeft), step.clause.LeftCol, step.clause.RightCol)
		if stats.prof != nil {
			kind := "hash join"
			if vec {
				kind = "vectorized hash join"
			}
			build := "right"
			if step.buildLeft {
				build = "left"
			}
			vecRows := int64(0)
			if vec {
				vecRows = int64(len(rows) + len(right))
			}
			stats.prof.add(opStat{
				name: "join", rowsIn: int64(len(rows) + len(right)), rowsOut: int64(len(joined)),
				vecRows: vecRows, dur: time.Since(joinStart),
				detail: fmt.Sprintf("%s %s = %s, build %s side", kind, step.clause.LeftCol, step.clause.RightCol, build),
			})
		}
		rows, schema = joined, joinedSchema
		lref = nil
	}
	// Residual WHERE over the joined rows.
	filterStart := profClock(stats.prof)
	out := rows[:0]
	for _, r := range rows {
		ok, err := expr.EvalPredicate(st.Where, r, &schema)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if ok {
			out = append(out, r)
		}
	}
	if stats.prof != nil && st.Where != nil {
		stats.prof.add(opStat{
			name: "filter", rowsIn: int64(len(rows)), rowsOut: int64(len(out)),
			resRows: int64(len(rows)), dur: time.Since(filterStart), detail: "post-join residual",
		})
	}
	return out, schema, nil
}

// buildSideName names a hash join's build side for event details.
func buildSideName(buildLeft bool) string {
	if buildLeft {
		return "left"
	}
	return "right"
}

// hasAggregates reports whether any select item aggregates.
func hasAggregates(st *vsql.Select) bool {
	for _, it := range st.Items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// scanOpts carries the scan-level pushdowns of one relation scan.
type scanOpts struct {
	// needCols restricts materialization to the named columns (late
	// materialization); nil materializes every column. Ignored for views and
	// system tables, whose rows exist in row form already.
	needCols []string
	// limit stops the scan once this many rows have been produced; -1 = no
	// limit. Callers only set it when scan rows map 1:1 to output rows.
	limit int64
	// countOnly skips materialization entirely: the scan returns only the
	// visible-and-matching row count from selection-vector popcounts.
	countOnly bool
	// profile turns on kernel-vs-residual work accounting in segment scans
	// (the PROFILE path).
	profile bool
}

// relationRows scans one relation. When where is non-nil the predicate is
// applied during the scan (and the hash-range conjuncts are pushed into the
// segment scan); opts carries the LIMIT and column-pruning pushdowns.
func (s *Session) relationRows(tr *vsql.TableRef, where expr.Expr, vis storage.Visibility, stats *scanStats, opts scanOpts) ([]types.Row, types.Schema, error) {
	name := strings.ToLower(tr.Name)
	if strings.HasPrefix(name, "v_catalog.") || strings.HasPrefix(name, "v_monitor.") {
		rows, schema, err := s.systemTable(name, vis)
		if err != nil {
			return nil, types.Schema{}, err
		}
		return filterRows(rows, schema, where, opts.limit)
	}
	if view, ok := s.cluster.cat.View(tr.Name); ok {
		sub, err := vsql.Parse(view.SelectSQL)
		if err != nil {
			return nil, types.Schema{}, fmt.Errorf("vertica: view %q definition: %w", view.Name, err)
		}
		subSel, ok := sub.(*vsql.Select)
		if !ok {
			return nil, types.Schema{}, fmt.Errorf("vertica: view %q is not a SELECT", view.Name)
		}
		if err := s.bindSelectFuncs(subSel); err != nil {
			return nil, types.Schema{}, err
		}
		rows, schema, err := s.sourceRows(subSel, vis, stats)
		if err != nil {
			return nil, types.Schema{}, err
		}
		rows, schema, err = project2(subSel, rows, schema)
		if err != nil {
			return nil, types.Schema{}, err
		}
		return filterRows(rows, schema, where, opts.limit)
	}
	tbl, ok := s.cluster.cat.Table(tr.Name)
	if !ok {
		return nil, types.Schema{}, fmt.Errorf("vertica: relation %q does not exist", tr.Name)
	}
	rows, _, schema, err := s.scanTable(tbl, where, vis, stats, opts)
	return rows, schema, err
}

// filterRows applies a residual predicate to materialized rows, stopping at
// limit surviving rows (-1 = no limit).
func filterRows(rows []types.Row, schema types.Schema, where expr.Expr, limit int64) ([]types.Row, types.Schema, error) {
	if where == nil {
		if limit >= 0 && int64(len(rows)) > limit {
			rows = rows[:limit]
		}
		return rows, schema, nil
	}
	out := make([]types.Row, 0, len(rows))
	for _, r := range rows {
		if limit >= 0 && int64(len(out)) >= limit {
			break
		}
		ok, err := expr.EvalPredicate(where, r, &schema)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, schema, nil
}

// neededColumns collects the table columns a single-table SELECT actually
// reads after the scan: select-list expressions, aggregate arguments, and
// GROUP BY keys. ORDER BY is excluded on purpose — it sorts the projected
// output, so its keys must already appear in the select list. A star item
// (or any name the scan schema cannot resolve, e.g. a view about to be
// expanded) returns nil: materialize everything.
func neededColumns(st *vsql.Select) []string {
	var names []string
	for _, it := range st.Items {
		if it.Star {
			return nil
		}
		if it.Expr != nil {
			names = it.Expr.Columns(names)
		}
		if it.Arg != nil {
			names = it.Arg.Columns(names)
		}
	}
	names = append(names, st.GroupBy...)
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		key := strings.ToLower(n)
		if !seen[key] {
			seen[key] = true
			out = append(out, n)
		}
	}
	return out
}

// scanConcurrency bounds the parallel segment-scan worker pool.
var scanConcurrency = runtime.GOMAXPROCS(0)

// segJob is one segment's share of a table scan.
type segJob struct {
	store    *storage.Store
	homeNode int
}

// segResult is the outcome of scanning one segment.
type segResult struct {
	rows        []types.Row
	count       int64
	scanRows    float64
	shuffleB    float64           // bytes gathered to the coordinator (0 when local)
	fstats      vexec.FilterStats // kernel/residual work split (profile scans only)
	contSeen    int64             // ROS containers considered
	contPruned  int64             // ROS containers skipped via zone maps
	contNoStats int64             // ROS containers with prunable predicates but no stats
	err         error
}

// buildSegJobs lists the (store, home node) pairs a table scan visits:
// the local replica for unsegmented tables, otherwise every segment whose
// hash range intersects hr, failing over to buddies for down nodes.
func (s *Session) buildSegJobs(tbl *catalog.Table, hr vhash.Range) ([]segJob, error) {
	var jobs []segJob
	if !tbl.Def.Segmented {
		// Unsegmented tables are replicated everywhere: serve entirely from
		// the connected node's local replica (zero shuffle).
		store, homeNode, err := s.replicaFor(tbl, s.localPos(tbl))
		if err != nil {
			return nil, err
		}
		return append(jobs, segJob{store, homeNode}), nil
	}
	segs := tbl.SegmentRanges()
	for i := range tbl.Stores {
		// Skip segments the requested hash range cannot touch.
		if segs[i].Lo >= hr.Hi || segs[i].Hi <= hr.Lo {
			continue
		}
		store, homeNode, err := s.replicaFor(tbl, i)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, segJob{store, homeNode})
	}
	return jobs, nil
}

// pruneFunc returns the container-level zone-map filter for a compiled
// predicate. Every ROS container carrying stats is counted; those whose zone
// maps prove the predicate matches no row are skipped without building a
// selection vector. Pruning on stats that cover deleted rows too is a sound
// superset test: excluding [min, max] excludes every visible row.
func (s *Session) pruneFunc(pred *vexec.Pred, res *segResult) func([]storage.ColStats, int) bool {
	zoneable := pred.HasZoneChecks()
	check := zoneable && !s.cluster.cfg.NoZoneMapPruning
	return func(stats []storage.ColStats, rowCount int) bool {
		res.contSeen++
		if len(stats) == 0 {
			// Container carries no zone maps: a prunable predicate loses its
			// chance here. Counted so the engine can raise a query event.
			if zoneable {
				res.contNoStats++
			}
			return false
		}
		if check && pred.CanPrune(stats, rowCount) {
			res.contPruned++
			return true
		}
		return false
	}
}

// scanTable scans a base table under the read context on the vectorized
// batch pipeline: hash-range conjuncts prune segments, the residual
// predicate is compiled to typed column kernels (vexec), segments fan out
// over a bounded worker pool, and only surviving rows × needed columns are
// materialized. With countOnly the scan completes from selection-vector
// popcounts and materializes nothing. Results are deterministic: segments
// are merged in segment order, matching the sequential reference scan.
func (s *Session) scanTable(tbl *catalog.Table, where expr.Expr, vis storage.Visibility, stats *scanStats, opts scanOpts) ([]types.Row, int64, types.Schema, error) {
	if stats.table == "" {
		stats.table = tbl.Def.Name
	}
	if s.cluster.cfg.RowAtATimeScans {
		// Ablation/debug knob: run the retained reference implementation.
		scanStart := profClock(stats.prof)
		rows, schema, err := s.scanTableRowAtATime(tbl, where, vis, stats)
		if stats.prof != nil && err == nil {
			total := int64(0)
			for _, n := range stats.scanRows {
				total += int64(n)
			}
			stats.prof.add(opStat{
				name: "scan " + tbl.Def.Name, rowsIn: total, rowsOut: int64(len(rows)),
				resRows: total, dur: time.Since(scanStart), detail: "row-at-a-time reference",
			})
		}
		return rows, int64(len(rows)), schema, err
	}
	stats.vectorized = true
	scanStart := profClock(stats.prof)
	if stats.prof != nil {
		opts.profile = true
	}
	schema := tbl.Def.Schema
	hr, residual := extractHashRange(where, tbl)
	pred := vexec.Compile(residual, schema, tbl.SegIdx)
	needIdx, outSchema := resolveNeedCols(schema, opts.needCols)

	jobs, err := s.buildSegJobs(tbl, hr)
	if err != nil {
		return nil, 0, types.Schema{}, err
	}

	results := make([]segResult, len(jobs))
	runSegJobs(len(jobs), func(i int) {
		results[i] = s.scanSegment(jobs[i], vis, hr, pred, needIdx, opts)
	})

	// Deterministic merge in segment order; per-segment stats fold into the
	// query's accounting on the coordinating goroutine only.
	var out []types.Row
	var count int64
	var fstats vexec.FilterStats
	var scanned, contSeen, contNoStats int64
	for i, res := range results {
		if res.err != nil {
			return nil, 0, types.Schema{}, res.err
		}
		stats.scanRows[sim.VName(jobs[i].homeNode)] += res.scanRows
		if res.shuffleB > 0 {
			stats.shuffle[[2]string{sim.VName(jobs[i].homeNode), s.node.Name}] += res.shuffleB
		}
		count += res.count
		scanned += int64(res.scanRows)
		fstats.KernelRows += res.fstats.KernelRows
		fstats.ResidualRows += res.fstats.ResidualRows
		stats.contScanned += res.contSeen - res.contPruned
		stats.contPruned += res.contPruned
		stats.contNoStats += res.contNoStats
		contSeen += res.contSeen
		contNoStats += res.contNoStats
		out = append(out, res.rows...)
	}
	s.raiseZoneMapSkipped(tbl.Def.Name, pred.HasZoneChecks(), contNoStats, contSeen)
	if opts.limit >= 0 && int64(len(out)) > opts.limit {
		out = out[:opts.limit]
	}
	if stats.prof != nil {
		rowsOut := int64(len(out))
		if opts.countOnly {
			rowsOut = count
		}
		detail := fmt.Sprintf("%d segments, %d kernels", len(jobs), pred.NumKernels())
		if stats.contPruned > 0 {
			detail += fmt.Sprintf(", zone maps pruned %d/%d containers", stats.contPruned, stats.contPruned+stats.contScanned)
		}
		if opts.countOnly {
			detail += ", count pushdown"
		}
		if opts.limit >= 0 {
			detail += fmt.Sprintf(", limit %d pushed down", opts.limit)
		}
		stats.prof.add(opStat{
			name: "scan " + tbl.Def.Name, rowsIn: scanned, rowsOut: rowsOut,
			vecRows: fstats.KernelRows, resRows: fstats.ResidualRows,
			dur: time.Since(scanStart), detail: detail,
		})
	}
	return out, count, outSchema, nil
}

// runSegJobs runs fn(0..n-1) over the bounded segment-scan worker pool.
func runSegJobs(n int, fn func(int)) {
	if workers := min(scanConcurrency, n); workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(i)
				}
			}()
		}
		wg.Wait()
	}
}

// scanSegment runs one segment's batched scan: visibility + hash mask come
// pre-applied in each batch's selection vector, kernels narrow it, and the
// survivors are materialized (late) or just counted.
func (s *Session) scanSegment(job segJob, vis storage.Visibility, hr vhash.Range, pred *vexec.Pred, needIdx []int, opts scanOpts) segResult {
	res := segResult{scanRows: float64(job.store.TotalRows())}
	local := job.homeNode == s.node.ID
	var fs *vexec.FilterStats
	if opts.profile {
		fs = &res.fstats
	}
	err := job.store.ScanBatchesPruned(vis, hr, s.pruneFunc(pred, &res), func(b *storage.Batch) bool {
		if err := pred.FilterBatchStats(b, fs); err != nil {
			res.err = err
			return false
		}
		if opts.countOnly {
			res.count += int64(b.Len())
			return true
		}
		rows := b.Materialize(needIdx)
		if opts.limit >= 0 {
			if remain := opts.limit - int64(len(res.rows)); int64(len(rows)) > remain {
				rows = rows[:remain]
			}
		}
		res.rows = append(res.rows, rows...)
		res.count += int64(len(rows))
		if !local {
			for _, r := range rows {
				res.shuffleB += float64(types.WireSize(r))
			}
		}
		// Stop this segment once it alone can satisfy the LIMIT; the merge
		// keeps segment order, so the first rows win deterministically.
		return !(opts.limit >= 0 && int64(len(res.rows)) >= opts.limit)
	})
	if err != nil && res.err == nil {
		res.err = err
	}
	return res
}

// resolveNeedCols maps the needed column names onto schema indexes, in
// schema order, and builds the narrowed output schema. Unresolvable names
// (or a nil request) fall back to materializing every column.
func resolveNeedCols(schema types.Schema, needCols []string) ([]int, types.Schema) {
	if needCols == nil {
		return nil, schema
	}
	need := make([]bool, len(schema.Cols))
	for _, n := range needCols {
		i := schema.ColIndex(n)
		if i < 0 {
			return nil, schema
		}
		need[i] = true
	}
	idx := make([]int, 0, len(needCols))
	out := types.Schema{}
	for i, b := range need {
		if b {
			idx = append(idx, i)
			out.Cols = append(out.Cols, schema.Cols[i])
		}
	}
	return idx, out
}

// scanTableRowAtATime is the retained row-at-a-time reference scan: one
// boxed types.Value per cell, one delete-vector RLock per row, one
// interpreted predicate evaluation per row. It is the baseline the
// vectorized pipeline is benchmarked against (BenchmarkScanRowAtATime, the
// vectorized-vs-interpreted property tests, and the RowAtATimeScans
// ablation) and must keep semantics identical to scanTable.
func (s *Session) scanTableRowAtATime(tbl *catalog.Table, where expr.Expr, vis storage.Visibility, stats *scanStats) ([]types.Row, types.Schema, error) {
	schema := tbl.Def.Schema
	hr, residual := extractHashRange(where, tbl)
	var out []types.Row

	appendMatches := func(store *storage.Store, homeNode int) error {
		var scanErr error
		nodeName := sim.VName(homeNode)
		stats.scanRows[nodeName] += float64(store.TotalRows())
		store.Scan(vis, hr, func(r types.Row) bool {
			ok, err := expr.EvalPredicate(residual, r, &schema)
			if err != nil {
				scanErr = err
				return false
			}
			if ok {
				row := r.Clone()
				out = append(out, row)
				if homeNode != s.node.ID {
					stats.shuffle[[2]string{sim.VName(homeNode), s.node.Name}] += float64(types.WireSize(row))
				}
			}
			return true
		})
		return scanErr
	}

	if !tbl.Def.Segmented {
		// Unsegmented tables are replicated everywhere: serve entirely from
		// the connected node's local replica (zero shuffle).
		store, homeNode, err := s.replicaFor(tbl, s.localPos(tbl))
		if err != nil {
			return nil, types.Schema{}, err
		}
		if err := appendMatches(store, homeNode); err != nil {
			return nil, types.Schema{}, err
		}
		return out, schema, nil
	}

	segs := tbl.SegmentRanges()
	for i := range tbl.Stores {
		// Skip segments the requested hash range cannot touch.
		if segs[i].Lo >= hr.Hi || segs[i].Hi <= hr.Lo {
			continue
		}
		store, homeNode, err := s.replicaFor(tbl, i)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if err := appendMatches(store, homeNode); err != nil {
			return nil, types.Schema{}, err
		}
	}
	return out, schema, nil
}

// replicaFor returns the store serving ring position pos of the table, plus
// the ID of the node actually serving, failing over to a buddy replica on a
// surviving node when the position's own node is not UP. Only UP nodes serve
// reads: a DOWN or RECOVERING node's stores may be missing writes it slept
// through.
func (s *Session) replicaFor(tbl *catalog.Table, pos int) (*storage.Store, int, error) {
	if s.cluster.nodeUp(tbl.Ring[pos]) {
		return tbl.Stores[pos], tbl.Ring[pos], nil
	}
	n := len(tbl.Ring)
	for r := range tbl.Buddies {
		// Buddy replica r of position pos lives at ring position (pos+r+1)
		// mod n.
		host := (pos + r + 1) % n
		if s.cluster.nodeUp(tbl.Ring[host]) {
			return tbl.Buddies[r][host], tbl.Ring[host], nil
		}
	}
	if !tbl.Def.Segmented {
		// Unsegmented tables are fully replicated: any live node serves.
		for p := range tbl.Stores {
			if s.cluster.nodeUp(tbl.Ring[p]) {
				return tbl.Stores[p], tbl.Ring[p], nil
			}
		}
	}
	return nil, 0, fmt.Errorf("vertica: segment %d of table %q unavailable (node down, k-safety exhausted)", pos, tbl.Def.Name)
}

// localPos returns the connected node's position in the table's ring, or 0
// when the node is not in it (a freshly added node, pre-rebalance, serves
// from position 0's replica set).
func (s *Session) localPos(tbl *catalog.Table) int {
	if p := tbl.PosOf(s.node.ID); p >= 0 {
		return p
	}
	return 0
}

// extractHashRange pulls `HASH(segcols) >= lo` / `HASH(segcols) < hi`
// conjuncts matching the table's segmentation out of the predicate, returning
// the combined ring range and the residual predicate. This is the engine
// optimization that makes the connector's locality-aware partition queries
// (§3.1.2) cheap: the range test runs against precomputed segment hashes.
func extractHashRange(where expr.Expr, tbl *catalog.Table) (vhash.Range, expr.Expr) {
	full := vhash.Range{Lo: 0, Hi: vhash.RingSize}
	if where == nil {
		return full, nil
	}
	conjuncts := splitConjuncts(where, nil)
	hr := full
	var residual []expr.Expr
	for _, c := range conjuncts {
		lo, hi, ok := hashBound(c, tbl)
		if !ok {
			residual = append(residual, c)
			continue
		}
		if lo != nil && *lo > hr.Lo {
			hr.Lo = *lo
		}
		if hi != nil && *hi < hr.Hi {
			hr.Hi = *hi
		}
	}
	return hr, expr.Conjoin(residual...)
}

func splitConjuncts(e expr.Expr, dst []expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		return splitConjuncts(a.R, splitConjuncts(a.L, dst))
	}
	return append(dst, e)
}

// hashBound recognizes HASH(cols) CMP literal conjuncts over the table's
// segmentation expression and converts them to ring bounds.
func hashBound(e expr.Expr, tbl *catalog.Table) (lo, hi *uint64, ok bool) {
	cmp, isCmp := e.(*expr.Cmp)
	if !isCmp {
		return nil, nil, false
	}
	h, isHash := cmp.L.(*expr.HashFn)
	lit, isLit := cmp.R.(*expr.Lit)
	if !isHash || !isLit || lit.V.Null {
		return nil, nil, false
	}
	if !hashMatchesSegmentation(h, tbl) {
		return nil, nil, false
	}
	n := lit.V.AsInt()
	if n < 0 {
		n = 0
	}
	u := uint64(n)
	switch cmp.Op {
	case expr.GE:
		return &u, nil, true
	case expr.GT:
		v := u + 1
		return &v, nil, true
	case expr.LT:
		return nil, &u, true
	case expr.LE:
		v := u + 1
		return nil, &v, true
	default:
		return nil, nil, false
	}
}

// hashMatchesSegmentation reports whether a HASH(...) call computes exactly
// the table's segmentation hash: HASH(*) for synthetic-hash relations
// (unsegmented tables), or HASH(c1, ..., ck) naming the segmentation columns
// in order.
func hashMatchesSegmentation(h *expr.HashFn, tbl *catalog.Table) bool {
	if len(h.Args) == 0 {
		// HASH(*): matches when the table's per-row hashes are whole-row
		// synthetic hashes, i.e. no explicit segmentation columns.
		return len(tbl.SegIdx) == 0
	}
	if len(h.Args) != len(tbl.SegIdx) {
		return false
	}
	for i, a := range h.Args {
		col, ok := a.(*expr.Col)
		if !ok {
			return false
		}
		if tbl.Def.Schema.ColIndex(col.Name) != tbl.SegIdx[i] {
			return false
		}
	}
	return true
}

// hashJoinStep performs one inner equi-join of the planner's pipeline:
// resolve the ON columns against the two input schemas, qualify the output
// column names (the left side only at the first step — lref is nil once the
// left input is itself a join result), then join vectorized when both inputs
// convert to column vectors, falling back to the boxed row join otherwise.
// Both paths emit identical rows in identical left-major order, whichever
// side the hash table is built on.
func (s *Session) hashJoinStep(left []types.Row, ls types.Schema, lref *vsql.TableRef,
	right []types.Row, rs types.Schema, rref *vsql.TableRef, jc *vsql.JoinClause, buildLeft bool) ([]types.Row, types.Schema, bool, error) {
	li := resolveJoinCol(ls, jc.LeftCol)
	ri := resolveJoinCol(rs, jc.RightCol)
	// The ON columns may be written either way around; try swapping.
	if li < 0 || ri < 0 {
		li = resolveJoinCol(ls, jc.RightCol)
		ri = resolveJoinCol(rs, jc.LeftCol)
	}
	if li < 0 || ri < 0 {
		return nil, types.Schema{}, false, fmt.Errorf("vertica: join columns %q/%q not found", jc.LeftCol, jc.RightCol)
	}
	out := types.Schema{}
	for _, c := range ls.Cols {
		name := c.Name
		if lref != nil {
			name = qualify(lref, c.Name)
		}
		out.Cols = append(out.Cols, types.Column{Name: name, T: c.T})
	}
	for _, c := range rs.Cols {
		out.Cols = append(out.Cols, types.Column{Name: qualify(rref, c.Name), T: c.T})
	}
	if !s.cluster.cfg.RowAtATimeScans {
		if rows, ok := vectorJoin(left, ls, li, right, rs, ri, buildLeft); ok {
			return rows, out, true, nil
		}
	}
	rows := rowHashJoin(left, li, right, ri)
	return rows, out, false, nil
}

// batchJoinStep is the batch-native first join: the anchor table scans as
// columnar batches (segment-parallel, WHERE-free — the residual applies after
// all joins) and vexec.JoinBatches probes them against the right side's typed
// key table. Only matched pairs box into rows, so a selective join skips the
// dominant cost of the materialize-then-join path: building boxed rows for
// every probe-side input. nLeft reports the visible left rows for profiling.
// ok=false (no error) means the shape isn't eligible — unresolvable ON
// columns or a right side that won't columnize — and the caller falls back.
func (s *Session) batchJoinStep(tbl *catalog.Table, base, rref *vsql.TableRef, jc *vsql.JoinClause, buildLeft bool,
	right []types.Row, rs types.Schema, vis storage.Visibility, stats *scanStats) ([]types.Row, types.Schema, int64, bool, error) {
	schema := tbl.Def.Schema
	li := resolveJoinCol(schema, jc.LeftCol)
	ri := resolveJoinCol(rs, jc.RightCol)
	// The ON columns may be written either way around; try swapping.
	if li < 0 || ri < 0 {
		li = resolveJoinCol(schema, jc.RightCol)
		ri = resolveJoinCol(rs, jc.LeftCol)
	}
	if li < 0 || ri < 0 {
		return nil, types.Schema{}, 0, false, nil
	}
	rcols, err := storage.ColumnsFromRows(right, rs)
	if err != nil {
		// Type drift in the right side's rows (view output, stored-type
		// drift): fall back to the boxed join.
		return nil, types.Schema{}, 0, false, nil
	}

	scanStart := profClock(stats.prof)
	pred := vexec.Compile(nil, schema, tbl.SegIdx)
	hr, _ := extractHashRange(nil, tbl)
	jobs, err := s.buildSegJobs(tbl, hr)
	if err != nil {
		return nil, types.Schema{}, 0, false, err
	}
	type segBatches struct {
		segResult
		batches []*storage.Batch
	}
	results := make([]segBatches, len(jobs))
	runSegJobs(len(jobs), func(i int) {
		res := &results[i]
		res.scanRows = float64(jobs[i].store.TotalRows())
		err := jobs[i].store.ScanBatchesPruned(vis, hr, s.pruneFunc(pred, &res.segResult), func(b *storage.Batch) bool {
			if len(b.Sel) > 0 {
				res.batches = append(res.batches, b)
			}
			return true
		})
		if err != nil {
			res.err = err
		}
	})
	var left []*storage.Batch
	var nLeft, scanned int64
	for i := range results {
		res := &results[i]
		if res.err != nil {
			return nil, types.Schema{}, 0, false, res.err
		}
		stats.scanRows[sim.VName(jobs[i].homeNode)] += res.scanRows
		scanned += int64(res.scanRows)
		stats.contScanned += res.contSeen
		for _, b := range res.batches {
			nLeft += int64(len(b.Sel))
		}
		left = append(left, res.batches...)
	}
	if stats.table == "" {
		stats.table = tbl.Def.Name
	}
	if stats.prof != nil {
		stats.prof.add(opStat{
			name: "scan " + tbl.Def.Name, rowsIn: scanned, rowsOut: nLeft, vecRows: nLeft,
			dur: time.Since(scanStart), detail: fmt.Sprintf("%d segments, batch-native join input", len(jobs)),
		})
	}

	out := types.Schema{}
	for _, c := range schema.Cols {
		out.Cols = append(out.Cols, types.Column{Name: qualify(base, c.Name), T: c.T})
	}
	for _, c := range rs.Cols {
		out.Cols = append(out.Cols, types.Column{Name: qualify(rref, c.Name), T: c.T})
	}
	rb := []*storage.Batch{{Schema: rs, Cols: rcols, Sel: allSel(len(right))}}
	var rows []types.Row
	vexec.JoinBatches(left, li, rb, ri, buildLeft, func(lb, lr, _, rr int32) {
		row := make(types.Row, 0, len(out.Cols))
		for _, c := range left[lb].Cols {
			row = append(row, c.Get(int(lr)))
		}
		for _, c := range rcols {
			row = append(row, c.Get(int(rr)))
		}
		rows = append(rows, row)
	})
	return rows, out, nLeft, true, nil
}

// resolveJoinCol finds a join column in a schema: the full (possibly
// qualified) name first — ColIndex's suffix fallback handles a qualified name
// against an unqualified base-table schema, and exact match handles it
// against an already-qualified join schema — then the bare column name.
func resolveJoinCol(schema types.Schema, name string) int {
	if i := schema.ColIndex(name); i >= 0 {
		return i
	}
	return schema.ColIndex(stripQualifier(name))
}

// vectorJoin joins via the typed batch kernels (vexec.JoinBatches): the
// inputs are converted to column vectors, the build side's key table is
// populated without boxing, and only matching pairs materialize rows. ok is
// false when an input cannot be column-encoded (untyped values from view
// projections); the caller falls back to the row join.
func vectorJoin(left []types.Row, ls types.Schema, li int, right []types.Row, rs types.Schema, ri int, buildLeft bool) ([]types.Row, bool) {
	lcols, err := storage.ColumnsFromRows(left, ls)
	if err != nil {
		return nil, false
	}
	rcols, err := storage.ColumnsFromRows(right, rs)
	if err != nil {
		return nil, false
	}
	lb := &storage.Batch{Schema: ls, Cols: lcols, Sel: allSel(len(left))}
	rb := &storage.Batch{Schema: rs, Cols: rcols, Sel: allSel(len(right))}
	width := len(ls.Cols) + len(rs.Cols)
	var rows []types.Row
	vexec.JoinBatches([]*storage.Batch{lb}, li, []*storage.Batch{rb}, ri, buildLeft, func(_, lr, _, rr int32) {
		row := make(types.Row, 0, width)
		for _, c := range lcols {
			row = append(row, c.Get(int(lr)))
		}
		for _, c := range rcols {
			row = append(row, c.Get(int(rr)))
		}
		rows = append(rows, row)
	})
	return rows, true
}

// allSel builds the identity selection vector of length n.
func allSel(n int) []int32 {
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// rowHashJoin is the retained boxed-row reference join: build the hash table
// on the right input, probe the left in order. The ablation/equivalence
// oracle for vectorJoin.
func rowHashJoin(left []types.Row, li int, right []types.Row, ri int) []types.Row {
	ht := make(map[joinKey][]types.Row, len(right))
	for _, r := range right {
		k, ok := joinKeyOf(r[ri])
		if !ok {
			continue
		}
		ht[k] = append(ht[k], r)
	}
	var rows []types.Row
	for _, l := range left {
		k, ok := joinKeyOf(l[li])
		if !ok {
			continue
		}
		for _, r := range ht[k] {
			row := make(types.Row, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			rows = append(rows, row)
		}
	}
	return rows
}

// joinKey is a typed, comparable hash-join key. Values of the same family
// equal each other per types.Compare (so INTEGER 1 joins FLOAT 1.0), while
// values of different families never collide — unlike the old string-rendered
// keys, where IntValue(1) and StringValue("1") were indistinguishable. Being
// a value type, it also costs no allocation per build/probe.
type joinKey struct {
	kind byte // 'i' integral numeric, 'f' non-integral float, 's' string, 'b' bool
	i    int64
	f    float64
	s    string
	b    bool
}

// joinKeyOf builds the key for v; ok is false for NULLs (which never join).
func joinKeyOf(v types.Value) (joinKey, bool) {
	if v.Null {
		return joinKey{}, false
	}
	switch v.T {
	case types.Int64:
		return joinKey{kind: 'i', i: v.I}, true
	case types.Float64:
		// Integral floats normalize to the int form so 1.0 matches INTEGER 1,
		// mirroring types.Compare's numeric promotion. Magnitudes beyond the
		// int64-exact range stay in float form.
		if f := v.F; f == math.Trunc(f) && f >= -(1<<62) && f <= 1<<62 {
			return joinKey{kind: 'i', i: int64(f)}, true
		}
		return joinKey{kind: 'f', f: v.F}, true
	case types.Varchar:
		return joinKey{kind: 's', s: v.S}, true
	case types.Bool:
		return joinKey{kind: 'b', b: v.B}, true
	default:
		return joinKey{}, false
	}
}

func stripQualifier(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func qualify(tr *vsql.TableRef, col string) string {
	q := tr.Alias
	if q == "" {
		q = tr.Name
	}
	return q + "." + col
}

// recordQuery emits the QueryFlowEv for a completed SELECT.
func (s *Session) recordQuery(rows []types.Row, stats *scanStats) {
	if s.obsv == nil {
		return
	}
	bytes := 0.0
	for _, r := range rows {
		bytes += float64(textWireSize(r))
	}
	s.record(sim.Event{
		Type:        sim.QueryFlowEv,
		VNode:       s.node.Name,
		CNode:       s.peer,
		ResultBytes: bytes,
		ResultRows:  float64(len(rows)),
		ScanRows:    stats.scanRows,
		Shuffle:     stats.shuffle,
	})
}

// textWireSize models the client protocol's text row encoding — the reason
// the paper's D1 moves ~2.3 KB/row on the JDBC wire (Table 2's 120 MBps x 4
// nodes x 475 s ≈ 228 GB for 100M rows) even though its CSV is 1.4 KB/row:
// the protocol renders FLOATs at full width regardless of stored precision.
func textWireSize(r types.Row) int {
	n := 0
	for _, v := range r {
		n += 4
		if v.Null {
			continue
		}
		if v.T == types.Float64 {
			n += 19
			continue
		}
		n += len(v.String())
	}
	return n
}
