package vertica

import (
	"fmt"
	"strings"

	"vsfabric/internal/catalog"
	"vsfabric/internal/expr"
	"vsfabric/internal/sim"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
	"vsfabric/internal/vsql"
)

// visibility wraps the storage read context for the executor.
type visibility struct{ v storage.Visibility }

func snapshotVis(c *Cluster) storage.Visibility {
	return storage.Visibility{Epoch: c.txm.LastEpoch()}
}

// scanStats accumulates the per-query resource accounting that becomes one
// QueryFlowEv for the performance layer.
type scanStats struct {
	scanRows map[string]float64
	shuffle  map[[2]string]float64
}

func newScanStats() *scanStats {
	return &scanStats{scanRows: make(map[string]float64), shuffle: make(map[[2]string]float64)}
}

// executeSelect plans and runs a SELECT.
func (s *Session) executeSelect(st *vsql.Select) (*Result, error) {
	// Resolve the read snapshot: AT EPOCH pins it; otherwise read-committed.
	vis := s.vis().v
	if st.AtEpoch != nil && !st.AtEpoch.Latest {
		if st.AtEpoch.N > s.cluster.txm.LastEpoch() {
			return nil, fmt.Errorf("vertica: epoch %d has not closed yet (last epoch %d)", st.AtEpoch.N, s.cluster.txm.LastEpoch())
		}
		vis.Epoch = st.AtEpoch.N
	}
	if err := s.bindSelectFuncs(st); err != nil {
		return nil, err
	}

	stats := newScanStats()
	rows, schema, err := s.sourceRows(st, vis, stats)
	if err != nil {
		return nil, err
	}
	out, outSchema, err := project(st, rows, schema)
	if err != nil {
		return nil, err
	}
	s.recordQuery(out, stats)
	return &Result{Schema: outSchema, Rows: out, Epoch: vis.Epoch}, nil
}

func (s *Session) bindSelectFuncs(st *vsql.Select) error {
	for _, it := range st.Items {
		if it.Expr != nil {
			if err := s.cluster.bindFuncs(it.Expr); err != nil {
				return err
			}
		}
		if it.Arg != nil {
			if err := s.cluster.bindFuncs(it.Arg); err != nil {
				return err
			}
		}
	}
	if st.Where != nil {
		return s.cluster.bindFuncs(st.Where)
	}
	return nil
}

// sourceRows produces the filtered input row set of a SELECT (before
// projection/aggregation): base table scan with hash-range pushdown, view
// expansion, system tables, and the optional equi-join.
func (s *Session) sourceRows(st *vsql.Select, vis storage.Visibility, stats *scanStats) ([]types.Row, types.Schema, error) {
	if st.From == nil {
		// FROM-less SELECT evaluates items once against an empty row.
		return []types.Row{{}}, types.Schema{}, nil
	}
	leftWhere := st.Where
	if st.Join != nil {
		// The predicate may reference both sides; apply it after the join.
		leftWhere = nil
	}
	left, leftSchema, err := s.relationRows(st.From, leftWhere, vis, stats, st.Join == nil && !hasAggregates(st))
	if err != nil {
		return nil, types.Schema{}, err
	}
	if st.Join == nil {
		// relationRows already applied the WHERE clause.
		return left, leftSchema, nil
	}
	right, rightSchema, err := s.relationRows(&st.Join.Right, nil, vis, stats, false)
	if err != nil {
		return nil, types.Schema{}, err
	}
	joined, joinedSchema, err := hashJoin(left, leftSchema, st.From, right, rightSchema, &st.Join.Right, st.Join)
	if err != nil {
		return nil, types.Schema{}, err
	}
	// Residual WHERE over the joined rows.
	out := joined[:0]
	for _, r := range joined {
		ok, err := expr.EvalPredicate(st.Where, r, &joinedSchema)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, joinedSchema, nil
}

// hasAggregates reports whether any select item aggregates.
func hasAggregates(st *vsql.Select) bool {
	for _, it := range st.Items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// relationRows scans one relation. When where is non-nil the predicate is
// applied during the scan (and the hash-range conjuncts are pushed into the
// segment scan); applyLimit additionally stops at st's LIMIT — only safe for
// plain single-table scans.
func (s *Session) relationRows(tr *vsql.TableRef, where expr.Expr, vis storage.Visibility, stats *scanStats, _ bool) ([]types.Row, types.Schema, error) {
	name := strings.ToLower(tr.Name)
	if strings.HasPrefix(name, "v_catalog.") || strings.HasPrefix(name, "v_monitor.") {
		rows, schema, err := s.systemTable(name, vis)
		if err != nil {
			return nil, types.Schema{}, err
		}
		return filterRows(rows, schema, where)
	}
	if view, ok := s.cluster.cat.View(tr.Name); ok {
		sub, err := vsql.Parse(view.SelectSQL)
		if err != nil {
			return nil, types.Schema{}, fmt.Errorf("vertica: view %q definition: %w", view.Name, err)
		}
		subSel, ok := sub.(*vsql.Select)
		if !ok {
			return nil, types.Schema{}, fmt.Errorf("vertica: view %q is not a SELECT", view.Name)
		}
		if err := s.bindSelectFuncs(subSel); err != nil {
			return nil, types.Schema{}, err
		}
		rows, schema, err := s.sourceRows(subSel, vis, stats)
		if err != nil {
			return nil, types.Schema{}, err
		}
		rows, schema, err = project2(subSel, rows, schema)
		if err != nil {
			return nil, types.Schema{}, err
		}
		return filterRows(rows, schema, where)
	}
	tbl, ok := s.cluster.cat.Table(tr.Name)
	if !ok {
		return nil, types.Schema{}, fmt.Errorf("vertica: relation %q does not exist", tr.Name)
	}
	return s.scanTable(tbl, where, vis, stats)
}

// filterRows applies a residual predicate to materialized rows.
func filterRows(rows []types.Row, schema types.Schema, where expr.Expr) ([]types.Row, types.Schema, error) {
	if where == nil {
		return rows, schema, nil
	}
	out := make([]types.Row, 0, len(rows))
	for _, r := range rows {
		ok, err := expr.EvalPredicate(where, r, &schema)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, schema, nil
}

// scanTable scans a base table under the read context, pushing hash-range
// conjuncts into the segment scan and evaluating the rest per row. It
// records per-node scan work and any cross-node gather traffic.
func (s *Session) scanTable(tbl *catalog.Table, where expr.Expr, vis storage.Visibility, stats *scanStats) ([]types.Row, types.Schema, error) {
	schema := tbl.Def.Schema
	hr, residual := extractHashRange(where, tbl)
	var out []types.Row

	appendMatches := func(store *storage.Store, homeNode int) error {
		var scanErr error
		nodeName := sim.VName(homeNode)
		stats.scanRows[nodeName] += float64(store.TotalRows())
		store.Scan(vis, hr, func(r types.Row) bool {
			ok, err := expr.EvalPredicate(residual, r, &schema)
			if err != nil {
				scanErr = err
				return false
			}
			if ok {
				row := r.Clone()
				out = append(out, row)
				if homeNode != s.node.ID {
					stats.shuffle[[2]string{sim.VName(homeNode), s.node.Name}] += float64(types.WireSize(row))
				}
			}
			return true
		})
		return scanErr
	}

	if !tbl.Def.Segmented {
		// Unsegmented tables are replicated everywhere: serve entirely from
		// the connected node's local replica (zero shuffle).
		store, homeNode, err := s.replicaFor(tbl, s.node.ID)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if err := appendMatches(store, homeNode); err != nil {
			return nil, types.Schema{}, err
		}
		return out, schema, nil
	}

	segs := tbl.SegmentRanges()
	for i := range tbl.Stores {
		// Skip segments the requested hash range cannot touch.
		if segs[i].Lo >= hr.Hi || segs[i].Hi <= hr.Lo {
			continue
		}
		store, homeNode, err := s.replicaFor(tbl, i)
		if err != nil {
			return nil, types.Schema{}, err
		}
		if err := appendMatches(store, homeNode); err != nil {
			return nil, types.Schema{}, err
		}
	}
	return out, schema, nil
}

// replicaFor returns the store serving node i's segment, failing over to a
// buddy replica on a surviving node when node i is down.
func (s *Session) replicaFor(tbl *catalog.Table, i int) (*storage.Store, int, error) {
	if !s.cluster.nodes[i].Down() {
		return tbl.Stores[i], i, nil
	}
	n := len(tbl.Stores)
	for r := range tbl.Buddies {
		// Buddy replica r of segment i lives on node (i+r+1) mod n.
		host := (i + r + 1) % n
		if !s.cluster.nodes[host].Down() {
			return tbl.Buddies[r][host], host, nil
		}
	}
	if !tbl.Def.Segmented {
		// Unsegmented tables are fully replicated: any live node serves.
		for j := range tbl.Stores {
			if !s.cluster.nodes[j].Down() {
				return tbl.Stores[j], j, nil
			}
		}
	}
	return nil, 0, fmt.Errorf("vertica: segment %d of table %q unavailable (node down, k-safety exhausted)", i, tbl.Def.Name)
}

// extractHashRange pulls `HASH(segcols) >= lo` / `HASH(segcols) < hi`
// conjuncts matching the table's segmentation out of the predicate, returning
// the combined ring range and the residual predicate. This is the engine
// optimization that makes the connector's locality-aware partition queries
// (§3.1.2) cheap: the range test runs against precomputed segment hashes.
func extractHashRange(where expr.Expr, tbl *catalog.Table) (vhash.Range, expr.Expr) {
	full := vhash.Range{Lo: 0, Hi: vhash.RingSize}
	if where == nil {
		return full, nil
	}
	conjuncts := splitConjuncts(where, nil)
	hr := full
	var residual []expr.Expr
	for _, c := range conjuncts {
		lo, hi, ok := hashBound(c, tbl)
		if !ok {
			residual = append(residual, c)
			continue
		}
		if lo != nil && *lo > hr.Lo {
			hr.Lo = *lo
		}
		if hi != nil && *hi < hr.Hi {
			hr.Hi = *hi
		}
	}
	return hr, expr.Conjoin(residual...)
}

func splitConjuncts(e expr.Expr, dst []expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		return splitConjuncts(a.R, splitConjuncts(a.L, dst))
	}
	return append(dst, e)
}

// hashBound recognizes HASH(cols) CMP literal conjuncts over the table's
// segmentation expression and converts them to ring bounds.
func hashBound(e expr.Expr, tbl *catalog.Table) (lo, hi *uint64, ok bool) {
	cmp, isCmp := e.(*expr.Cmp)
	if !isCmp {
		return nil, nil, false
	}
	h, isHash := cmp.L.(*expr.HashFn)
	lit, isLit := cmp.R.(*expr.Lit)
	if !isHash || !isLit || lit.V.Null {
		return nil, nil, false
	}
	if !hashMatchesSegmentation(h, tbl) {
		return nil, nil, false
	}
	n := lit.V.AsInt()
	if n < 0 {
		n = 0
	}
	u := uint64(n)
	switch cmp.Op {
	case expr.GE:
		return &u, nil, true
	case expr.GT:
		v := u + 1
		return &v, nil, true
	case expr.LT:
		return nil, &u, true
	case expr.LE:
		v := u + 1
		return nil, &v, true
	default:
		return nil, nil, false
	}
}

// hashMatchesSegmentation reports whether a HASH(...) call computes exactly
// the table's segmentation hash: HASH(*) for synthetic-hash relations
// (unsegmented tables), or HASH(c1, ..., ck) naming the segmentation columns
// in order.
func hashMatchesSegmentation(h *expr.HashFn, tbl *catalog.Table) bool {
	if len(h.Args) == 0 {
		// HASH(*): matches when the table's per-row hashes are whole-row
		// synthetic hashes, i.e. no explicit segmentation columns.
		return len(tbl.SegIdx) == 0
	}
	if len(h.Args) != len(tbl.SegIdx) {
		return false
	}
	for i, a := range h.Args {
		col, ok := a.(*expr.Col)
		if !ok {
			return false
		}
		if tbl.Def.Schema.ColIndex(col.Name) != tbl.SegIdx[i] {
			return false
		}
	}
	return true
}

// hashJoin performs the inner equi-join of two materialized relations,
// qualifying output column names with the table alias (or name).
func hashJoin(left []types.Row, ls types.Schema, lref *vsql.TableRef,
	right []types.Row, rs types.Schema, rref *vsql.TableRef, jc *vsql.JoinClause) ([]types.Row, types.Schema, error) {
	li := ls.ColIndex(stripQualifier(jc.LeftCol))
	ri := rs.ColIndex(stripQualifier(jc.RightCol))
	// The ON columns may be written either way around; try swapping.
	if li < 0 || ri < 0 {
		li = ls.ColIndex(stripQualifier(jc.RightCol))
		ri = rs.ColIndex(stripQualifier(jc.LeftCol))
	}
	if li < 0 || ri < 0 {
		return nil, types.Schema{}, fmt.Errorf("vertica: join columns %q/%q not found", jc.LeftCol, jc.RightCol)
	}
	out := types.Schema{}
	for _, c := range ls.Cols {
		out.Cols = append(out.Cols, types.Column{Name: qualify(lref, c.Name), T: c.T})
	}
	for _, c := range rs.Cols {
		out.Cols = append(out.Cols, types.Column{Name: qualify(rref, c.Name), T: c.T})
	}
	ht := make(map[string][]types.Row, len(right))
	for _, r := range right {
		if r[ri].Null {
			continue
		}
		ht[r[ri].String()] = append(ht[r[ri].String()], r)
	}
	var rows []types.Row
	for _, l := range left {
		if l[li].Null {
			continue
		}
		for _, r := range ht[l[li].String()] {
			row := make(types.Row, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			rows = append(rows, row)
		}
	}
	return rows, out, nil
}

func stripQualifier(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func qualify(tr *vsql.TableRef, col string) string {
	q := tr.Alias
	if q == "" {
		q = tr.Name
	}
	return q + "." + col
}

// recordQuery emits the QueryFlowEv for a completed SELECT.
func (s *Session) recordQuery(rows []types.Row, stats *scanStats) {
	if s.rec == nil {
		return
	}
	bytes := 0.0
	for _, r := range rows {
		bytes += float64(textWireSize(r))
	}
	s.rec.Add(sim.Event{
		Type:        sim.QueryFlowEv,
		VNode:       s.node.Name,
		CNode:       s.clientNode,
		ResultBytes: bytes,
		ResultRows:  float64(len(rows)),
		ScanRows:    stats.scanRows,
		Shuffle:     stats.shuffle,
	})
}

// textWireSize models the client protocol's text row encoding — the reason
// the paper's D1 moves ~2.3 KB/row on the JDBC wire (Table 2's 120 MBps x 4
// nodes x 475 s ≈ 228 GB for 100M rows) even though its CSV is 1.4 KB/row:
// the protocol renders FLOATs at full width regardless of stored precision.
func textWireSize(r types.Row) int {
	n := 0
	for _, v := range r {
		n += 4
		if v.Null {
			continue
		}
		if v.T == types.Float64 {
			n += 19
			continue
		}
		n += len(v.String())
	}
	return n
}
