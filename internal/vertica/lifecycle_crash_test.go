package vertica

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"vsfabric/internal/storage"
	"vsfabric/internal/wal"
)

func membershipWorkload() []crashStep {
	return []crashStep{
		execStep("create", "CREATE TABLE t (id INTEGER, v INTEGER) SEGMENTED BY HASH(id) KSAFE 1"),
		execStep("insert1", "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)"),
		execStep("add-node", "ALTER CLUSTER ADD NODE"),
		execStep("insert2", "INSERT INTO t VALUES (10, 100), (11, 110)"),
		execStep("remove-node", "ALTER CLUSTER REMOVE NODE 1"),
		execStep("insert3", "INSERT INTO t VALUES (20, 200)"),
	}
}

// verifyMembershipRecovery reopens the directory and checks the recovered
// rows equal the acknowledged prefix. Epochs are not compared: a crash
// mid-ALTER can leave committed per-table rebalance transactions (pure
// movement, no row changes) that the model run never executed. It also
// checks reopen converged every table onto the logged membership ring.
func verifyMembershipRecovery(t *testing.T, label, dir string, cache *storage.ContainerCache, steps []crashStep, acks []bool) {
	t.Helper()
	want, _ := modelState(t, steps, acks)
	c, err := NewCluster(Config{Nodes: 2, DataDir: dir, Cache: cache})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer c.Close()
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := dumpTable(s, "t"); !sameRows(got, want) {
		t.Fatalf("%s (acks %v):\nrecovered %v\n expected %v", label, acks, got, want)
	}
	ringsConverged(t, c)
	if want != nil {
		if _, err := s.Execute("INSERT INTO t VALUES (900, 9)"); err != nil {
			t.Fatalf("%s: post-recovery insert failed: %v", label, err)
		}
	}
}

// TestMembershipCrashSweep kills the cluster at EVERY WAL record boundary of
// a workload that grows and shrinks the cluster mid-stream: the membership
// record, each per-table rebalance record, and the commits around them. At
// every crash point reopen must converge — no acknowledged row lost, no
// segment duplicated, every table on the logged membership ring.
func TestMembershipCrashSweep(t *testing.T) {
	steps := membershipWorkload()
	appends := countWorkloadAppends(t, steps)
	if appends < 8 {
		t.Fatalf("workload too small to sweep: %d appends", appends)
	}
	for n := 0; n < appends; n++ {
		dir := t.TempDir()
		cache := storage.NewContainerCache(0)
		c := durableCluster(t, dir, cache)
		c.curWAL().FailAfterRecords(n)
		acks := runSteps(t, c, steps)
		_ = c.Close()
		verifyMembershipRecovery(t, fmt.Sprintf("crash@%d", n), dir, cache, steps, acks)
	}
}

// recoveryWorkload drives a down-window with writes during the outage and a
// synchronous heal: create, insert, node 1 dies, insert (lands on buddies,
// marks the dead node's stores stale), node 1 heals (recovery transaction),
// insert. Returns which inserts were acknowledged.
func runRecoveryWorkload(t *testing.T, c *Cluster) []bool {
	t.Helper()
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	exec := func(sql string) bool {
		_, err := s.Execute(sql)
		return err == nil
	}
	acks := make([]bool, 4)
	acks[0] = exec("CREATE TABLE t (id INTEGER, v INTEGER) SEGMENTED BY HASH(id) KSAFE 1")
	acks[1] = exec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	c.Node(1).SetDown(true)
	acks[2] = exec("INSERT INTO t VALUES (10, 100), (11, 110)")
	// Healing runs the recovery state machine (RECOVERING -> rebuild stale
	// stores -> recovery transaction commit -> UP). With a torn WAL the
	// commit fails and the node reverts to DOWN — never half-recovered.
	c.Node(1).SetDown(false)
	acks[3] = exec("INSERT INTO t VALUES (20, 200)")
	return acks
}

// TestRecoveryCrashSweep crashes the WAL at every record boundary of the
// recovery workload — including inside the heal's own recovery transaction —
// and checks reopen always lands on exactly the acknowledged rows, with the
// cluster writable and nothing stale.
func TestRecoveryCrashSweep(t *testing.T) {
	// Count the clean run's appends.
	cleanDir := t.TempDir()
	c := durableCluster(t, cleanDir, nil)
	acks := runRecoveryWorkload(t, c)
	for i, ok := range acks {
		if !ok {
			t.Fatalf("clean run: step %d failed", i)
		}
	}
	if c.Node(1).State() != NodeUp {
		t.Fatal("clean run: heal did not return the node to UP")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := wal.ReadAll(filepath.Join(cleanDir, "wal-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	appends := len(recs) - 1

	inserts := [][]string{
		nil,
		{"1|10", "2|20", "3|30"},
		{"10|100", "11|110"},
		{"20|200"},
	}
	for n := 0; n < appends; n++ {
		dir := t.TempDir()
		cache := storage.NewContainerCache(0)
		c := durableCluster(t, dir, cache)
		c.curWAL().FailAfterRecords(n)
		acks := runRecoveryWorkload(t, c)
		_ = c.Close()

		var want []string
		for i, ok := range acks {
			if ok {
				want = append(want, inserts[i]...)
			}
		}
		if !acks[0] {
			want = nil // table never existed
		}
		c2, err := NewCluster(Config{Nodes: 2, DataDir: dir, Cache: cache})
		if err != nil {
			t.Fatalf("crash@%d: recovery failed: %v", n, err)
		}
		s2, err := c2.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		got := dumpTable(s2, "t")
		if !sameRows(got, sortedCopyStrings(want)) {
			t.Fatalf("crash@%d (acks %v):\nrecovered %v\n expected %v", n, acks, got, want)
		}
		noStaleStores(t, c2)
		if want != nil {
			if _, err := s2.Execute("INSERT INTO t VALUES (900, 9)"); err != nil {
				t.Fatalf("crash@%d: post-recovery insert failed: %v", n, err)
			}
		}
		s2.Close()
		c2.Close()
	}
}

func sortedCopyStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}
