package vertica

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"vsfabric/internal/obs"
	"vsfabric/internal/rebalance"
	"vsfabric/internal/sim"
	"vsfabric/internal/txn"
	"vsfabric/internal/types"
	"vsfabric/internal/vsql"
)

// This file implements elastic cluster membership: ALTER CLUSTER ADD NODE and
// ALTER CLUSTER REMOVE NODE. Both recompute the membership ring and then move
// every table onto it, one table per rebalance transaction:
//
//	EXCLUSIVE lock → rebalance.MoveTable builds a complete new layout from the
//	committed contents → a commit hook logs the move and swaps the catalog
//	layout → Commit closes the rebalance epoch.
//
// The exclusive lock is the linchpin: while held, no provisional rows exist
// in the table, so the exported versions are exactly the committed state, and
// the layout swap at commit flips visibility atomically. Readers that
// resolved the table before the swap keep scanning the old stores (the swap
// is copy-on-write), so AT EPOCH scans and V2S jobs pinned to their planning
// epoch stay correct across the move.
//
// Between the membership change and the last table's rebalance the cluster is
// mid-drain: the catalog ring names the new membership while individual
// tables still carry their old rings. Every table remains self-consistent
// (its Ring describes its own Stores), which is what read and write routing
// key off — the mixed state is safe, just not yet balanced. A crash in this
// window is converged at reopen (openDurable rebalances any table whose ring
// lags the logged membership).

// rebalanceOp is one recorded cluster-lifecycle operation, surfaced through
// v_monitor.rebalance_operations.
type rebalanceOp struct {
	ID         uint64
	Kind       string // "add_node" | "remove_node" | "recovery"
	Table      string
	Node       int // the node being added / removed / recovered
	Status     string
	Rows       int // committed row versions placed in the new layout
	RowsMoved  int // versions whose owning node changed
	Containers int
	StartEpoch uint64
	EndEpoch   uint64
	Err        string
}

// rebalanceTracker keeps a bounded in-memory history of lifecycle operations.
type rebalanceTracker struct {
	mu   sync.Mutex
	next uint64
	ops  []rebalanceOp
}

// rebalanceHistory bounds the tracker: old completed entries age out first.
const rebalanceHistory = 256

func (t *rebalanceTracker) start(kind, table string, node int, epoch uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	t.ops = append(t.ops, rebalanceOp{
		ID: t.next, Kind: kind, Table: table, Node: node,
		Status: "running", StartEpoch: epoch,
	})
	if len(t.ops) > rebalanceHistory {
		t.ops = append(t.ops[:0:0], t.ops[len(t.ops)-rebalanceHistory:]...)
	}
	return t.next
}

func (t *rebalanceTracker) finish(id uint64, res rebalance.Result, epoch uint64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.ops {
		if t.ops[i].ID != id {
			continue
		}
		t.ops[i].Rows = res.Rows
		t.ops[i].RowsMoved = res.RowsMoved
		t.ops[i].Containers = res.Containers
		t.ops[i].EndEpoch = epoch
		if err != nil {
			t.ops[i].Status = "failed"
			t.ops[i].Err = err.Error()
		} else {
			t.ops[i].Status = "complete"
		}
		return
	}
}

func (t *rebalanceTracker) snapshot() []rebalanceOp {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]rebalanceOp(nil), t.ops...)
}

// AddNode grows the cluster by one node (ALTER CLUSTER ADD NODE) and
// rebalances every table onto the extended ring. Returns the new node's ID.
// The node is UP and receiving writes from the moment it joins the ring;
// tables serve reads from their old layouts until their individual rebalance
// commits, so queries never observe a half-moved table.
func (c *Cluster) AddNode() (int, error) {
	c.membershipMu.Lock()
	defer c.membershipMu.Unlock()

	nodes := c.nodeList()
	id := len(nodes)
	if c.durable() {
		if err := os.MkdirAll(filepath.Join(c.dataDir, fmt.Sprintf("node-%d", id)), 0o755); err != nil {
			return -1, err
		}
	}
	newRing := append(c.cat.Ring(), id)
	// The membership record precedes the per-table rebalance records in the
	// WAL: replaying it re-creates the node and sets the target ring the
	// rebalance records (or post-replay convergence) move tables onto.
	if err := c.logDDL(opAddNode, ddlPayload{Node: id, Ring: newRing}); err != nil {
		return -1, err
	}
	grown := append(append([]*Node(nil), nodes...), c.newNode(id))
	c.nodesPtr.Store(&grown)
	c.cat.SetMembership(newRing)
	c.mon.Add("cluster.nodes_added", 1)
	return id, c.rebalanceAll("add_node", id, newRing)
}

// RemoveNode drops a node from the cluster (ALTER CLUSTER REMOVE NODE),
// draining its segments onto the surviving members first. The node keeps
// serving reads during the drain — its replicas are the move's primary
// sources — and is marked REMOVED only once every table has left it.
func (c *Cluster) RemoveNode(id int) error {
	c.membershipMu.Lock()
	defer c.membershipMu.Unlock()

	n := c.node(id)
	if n == nil {
		return fmt.Errorf("vertica: no node %d in %d-node cluster", id, c.NumNodes())
	}
	if n.State() == NodeRemoved {
		return fmt.Errorf("%w: node %d", ErrNodeRemoved, id)
	}
	ring := c.cat.Ring()
	newRing := rebalance.RingWithout(ring, id)
	if len(newRing) == len(ring) {
		return fmt.Errorf("vertica: node %d is not a cluster member", id)
	}
	if len(newRing) == 0 {
		return fmt.Errorf("vertica: cannot remove the last node")
	}
	// Pre-validate k-safety across the whole catalog before logging anything:
	// a shrink that would leave some table with k >= nodes must fail cleanly.
	for _, tbl := range c.cat.Tables() {
		if tbl.Def.KSafety >= len(newRing) {
			return fmt.Errorf("vertica: cannot remove node %d: table %q k-safety %d needs more than %d nodes",
				id, tbl.Def.Name, tbl.Def.KSafety, len(newRing))
		}
	}
	if err := c.logDDL(opRemoveNode, ddlPayload{Node: id, Ring: newRing}); err != nil {
		return err
	}
	c.cat.SetMembership(newRing)
	if err := c.rebalanceAll("remove_node", id, newRing); err != nil {
		// The membership change is logged and will converge at reopen; the
		// node is left un-removed so its replicas stay available as sources
		// for a retry.
		return err
	}
	n.setState(NodeRemoved)
	c.mon.Add("cluster.nodes_removed", 1)
	return nil
}

// rebalanceAll moves every table onto ring, continuing past per-table
// failures (a table whose sources are k-safety-exhausted right now should
// not block the others) and returning the first error.
func (c *Cluster) rebalanceAll(kind string, node int, ring []int) error {
	var firstErr error
	for _, tbl := range c.cat.Tables() {
		if err := c.rebalanceTable(kind, node, tbl.Def.Name, ring); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("vertica: rebalancing table %q: %w", tbl.Def.Name, err)
		}
	}
	return firstErr
}

// rebalanceTable moves one table onto ring inside its own transaction. The
// epoch the commit closes is the table's rebalance epoch: reads at or before
// it are answered identically by old and new layouts (versions carry their
// full MVCC history), reads after it see the new placement.
func (c *Cluster) rebalanceTable(kind string, node int, name string, ring []int) error {
	tx := c.txm.Begin()
	defer tx.Abort()
	if err := tx.Acquire(name, txn.LockExclusive); err != nil {
		return err
	}
	// Re-resolve under the lock: the *Table may have been swapped (or
	// dropped) while we waited.
	tbl, ok := c.cat.Table(name)
	if !ok {
		return nil
	}
	if rebalance.RingsEqual(tbl.Ring, ring) {
		return nil
	}
	opID := c.reb.start(kind, name, node, c.txm.LastEpoch())
	sp := obs.Start(c.mon, "rebalance", sim.VName(node))
	healthy := func(id int) bool { return c.nodeUp(id) }
	lay, res, err := rebalance.MoveTable(tbl, ring, healthy)
	if err != nil {
		c.reb.finish(opID, res, c.txm.LastEpoch(), err)
		if sp != nil {
			sp.End(err)
		}
		return err
	}
	tx.OnCommit(func() error {
		if err := c.logDDL(opRebalance, ddlPayload{Name: name, Ring: lay.Ring}); err != nil {
			return err
		}
		_, err := c.cat.SwapLayout(name, lay.Ring, lay.Stores, lay.Buddies)
		return err
	})
	epoch, err := tx.Commit()
	c.reb.finish(opID, res, epoch, err)
	if sp != nil {
		sp.SetDetail(fmt.Sprintf("table %s: %d rows, %d moved", name, res.Rows, res.RowsMoved))
		sp.End(err)
	}
	return err
}

// RebalanceOps returns a snapshot of recorded lifecycle operations (backs
// v_monitor.rebalance_operations; exported for tests).
func (c *Cluster) RebalanceOps() []rebalanceOp { return c.reb.snapshot() }

// executeAlterCluster runs ALTER CLUSTER ADD/REMOVE NODE. Membership changes
// manage their own per-table transactions, so they cannot run inside an
// explicit transaction. ADD returns the new node's id as a one-row result.
func (s *Session) executeAlterCluster(st *vsql.AlterCluster) (*Result, error) {
	if s.tx != nil {
		return nil, fmt.Errorf("vertica: ALTER CLUSTER cannot run inside a transaction")
	}
	switch st.Action {
	case vsql.AlterClusterAdd:
		id, err := s.cluster.AddNode()
		if err != nil {
			return nil, err
		}
		return &Result{
			Schema: types.NewSchema(types.Column{Name: "node_id", T: types.Int64}),
			Rows:   []types.Row{{types.IntValue(int64(id))}},
			Epoch:  s.cluster.txm.LastEpoch(),
		}, nil
	case vsql.AlterClusterRemove:
		if err := s.cluster.RemoveNode(st.Node); err != nil {
			return nil, err
		}
		return &Result{Epoch: s.cluster.txm.LastEpoch()}, nil
	default:
		return nil, fmt.Errorf("vertica: unknown ALTER CLUSTER action %d", st.Action)
	}
}
