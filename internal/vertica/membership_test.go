package vertica

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vsfabric/internal/rebalance"
	"vsfabric/internal/storage"
)

func seedRows(t *testing.T, s *Session, table string, lo, hi int) {
	t.Helper()
	var vals []string
	for i := lo; i < hi; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i*10))
		if len(vals) == 200 || i == hi-1 {
			s.MustExecute(fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(vals, ", ")))
			vals = nil
		}
	}
}

// ringsConverged checks every table's ring equals the catalog membership ring.
func ringsConverged(t *testing.T, c *Cluster) {
	t.Helper()
	target := c.Catalog().Ring()
	for _, tbl := range c.Catalog().Tables() {
		if !rebalance.RingsEqual(tbl.Ring, target) {
			t.Fatalf("table %q ring %v lags membership %v", tbl.Def.Name, tbl.Ring, target)
		}
	}
}

// noStaleStores checks no store anywhere is still marked stale.
func noStaleStores(t *testing.T, c *Cluster) {
	t.Helper()
	for _, tbl := range c.Catalog().Tables() {
		for p, st := range tbl.Stores {
			if st.Stale() {
				t.Fatalf("table %q primary %d still stale", tbl.Def.Name, p)
			}
		}
		for r := range tbl.Buddies {
			for p, st := range tbl.Buddies[r] {
				if st.Stale() {
					t.Fatalf("table %q buddy[%d][%d] still stale", tbl.Def.Name, r, p)
				}
			}
		}
	}
}

// TestAlterClusterAddNode grows a live 2-node cluster to 3 and checks data
// survival, ring convergence, routing of new writes, and the monitoring
// surface.
func TestAlterClusterAddNode(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE kt (id INTEGER, v INTEGER) SEGMENTED BY HASH(id) KSAFE 1")
	s.MustExecute("CREATE TABLE rep (id INTEGER, v INTEGER) UNSEGMENTED ALL NODES")
	seedRows(t, s, "kt", 0, 300)
	seedRows(t, s, "rep", 0, 40)
	want := dumpTable(s, "kt")
	wantRep := dumpTable(s, "rep")

	res := s.MustExecute("ALTER CLUSTER ADD NODE")
	if id := mustI(t, res); id != 2 {
		t.Fatalf("new node id = %d, want 2", id)
	}
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	ringsConverged(t, c)
	noStaleStores(t, c)
	if got := dumpTable(s, "kt"); !sameRows(got, want) {
		t.Fatalf("add-node rebalance lost rows:\n got %d rows\nwant %d rows", len(got), len(want))
	}
	if got := dumpTable(s, "rep"); !sameRows(got, wantRep) {
		t.Fatalf("unsegmented table lost rows across add-node")
	}

	// The new node serves sessions and sees all data.
	s2 := sess(t, c, 2)
	if n := mustI(t, s2.MustExecute("SELECT COUNT(*) FROM kt")); n != 300 {
		t.Fatalf("new node count = %d", n)
	}
	// New writes route across the 3-node ring; the catalog reports 3 segments.
	seedRows(t, s, "kt", 300, 400)
	if n := mustI(t, s.MustExecute("SELECT COUNT(*) FROM kt")); n != 400 {
		t.Fatalf("post-grow count = %d", n)
	}
	segs := s.MustExecute("SELECT node_address FROM v_catalog.segments WHERE table_name = 'kt'")
	if len(segs.Rows) != 3 {
		t.Fatalf("v_catalog.segments reports %d segments, want 3", len(segs.Rows))
	}
	nodes := s.MustExecute("SELECT node_state FROM v_monitor.node_states")
	if len(nodes.Rows) != 3 {
		t.Fatalf("node_states rows = %d", len(nodes.Rows))
	}
	for _, r := range nodes.Rows {
		if r[0].S != "UP" {
			t.Fatalf("node state %q, want UP", r[0].S)
		}
	}
	ops := s.MustExecute("SELECT operation_type, table_name, status FROM v_monitor.rebalance_operations")
	complete := 0
	for _, r := range ops.Rows {
		if r[0].S == "add_node" && r[2].S == "complete" {
			complete++
		}
	}
	if complete < 2 {
		t.Fatalf("rebalance_operations reports %d complete add_node moves, want >= 2:\n%v", complete, ops.Rows)
	}
}

// TestAlterClusterRemoveNode drains a node out of a 3-node cluster: data
// survives, the removed node gets its own stable connect error, and the
// survivors keep accepting writes.
func TestAlterClusterRemoveNode(t *testing.T) {
	c := testCluster(t, 3)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE kt (id INTEGER, v INTEGER) SEGMENTED BY HASH(id) KSAFE 1")
	seedRows(t, s, "kt", 0, 300)
	want := dumpTable(s, "kt")
	removedAddr := c.Node(1).Addr

	s.MustExecute("ALTER CLUSTER REMOVE NODE 1")
	if got := dumpTable(s, "kt"); !sameRows(got, want) {
		t.Fatalf("remove-node drain lost rows: %d, want %d", len(got), len(want))
	}
	ringsConverged(t, c)
	if got := c.Catalog().Ring(); !rebalance.RingsEqual(got, []int{0, 2}) {
		t.Fatalf("membership ring = %v, want [0 2]", got)
	}

	// The removed node's error is distinct from a down node's.
	if _, err := c.Connect(1); !errors.Is(err, ErrNodeRemoved) {
		t.Fatalf("Connect(removed) = %v, want ErrNodeRemoved", err)
	}
	if _, err := c.Connect(1); errors.Is(err, ErrNodeDown) {
		t.Fatal("removed node must not read as merely down")
	}
	if _, err := c.ConnectAddr(removedAddr); !errors.Is(err, ErrNodeRemoved) {
		t.Fatalf("ConnectAddr(removed) = %v, want ErrNodeRemoved", err)
	}
	// Connector planning must no longer see the node.
	nodes := s.MustExecute("SELECT node_address FROM v_catalog.nodes")
	if len(nodes.Rows) != 2 {
		t.Fatalf("v_catalog.nodes reports %d nodes after removal", len(nodes.Rows))
	}
	for _, r := range nodes.Rows {
		if r[0].S == removedAddr {
			t.Fatal("removed node still listed in v_catalog.nodes")
		}
	}

	// Survivors keep working, and the cluster can grow again: node IDs are
	// never reused.
	seedRows(t, s, "kt", 300, 350)
	if n := mustI(t, s.MustExecute("SELECT COUNT(*) FROM kt")); n != 350 {
		t.Fatalf("post-removal count = %d", n)
	}
	if id := mustI(t, s.MustExecute("ALTER CLUSTER ADD NODE")); id != 3 {
		t.Fatalf("re-grown node id = %d, want 3 (no reuse of removed id)", id)
	}
	ringsConverged(t, c)
}

func TestAlterClusterValidation(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE kt (id INTEGER) SEGMENTED BY HASH(id) KSAFE 1")

	// Removing a node that would break a table's k-safety must fail cleanly
	// and change nothing.
	if _, err := s.Execute("ALTER CLUSTER REMOVE NODE 1"); err == nil || !strings.Contains(err.Error(), "k-safety") {
		t.Fatalf("k-safety-violating removal: %v", err)
	}
	if c.Catalog().NumNodes() != 2 {
		t.Fatal("failed removal changed membership")
	}
	if _, err := s.Execute("ALTER CLUSTER REMOVE NODE 7"); err == nil {
		t.Fatal("removing an unknown node must fail")
	}
	// Membership DDL manages its own transactions.
	s.MustExecute("BEGIN")
	if _, err := s.Execute("ALTER CLUSTER ADD NODE"); err == nil {
		t.Fatal("ALTER CLUSTER inside a transaction must fail")
	}
	s.MustExecute("ROLLBACK")

	// The last node can never be removed.
	c1 := testCluster(t, 1)
	s1 := sess(t, c1, 0)
	if _, err := s1.Execute("ALTER CLUSTER REMOVE NODE 0"); err == nil {
		t.Fatal("removing the last node must fail")
	}
}

// TestAtEpochPinnedAcrossRebalance is the regression test for epoch-consistent
// movement: a reader pinned before an ALTER CLUSTER must read identical rows
// after every table has been rebalanced onto the new ring.
func TestAtEpochPinnedAcrossRebalance(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE kt (id INTEGER, v INTEGER) SEGMENTED BY HASH(id) KSAFE 1")
	seedRows(t, s, "kt", 0, 200)
	s.MustExecute("DELETE FROM kt WHERE id < 20")
	pinned := c.LastEpoch()
	atPinned := fmt.Sprintf("AT EPOCH %d SELECT COUNT(*) FROM kt", pinned)

	reader := sess(t, c, 1)
	if err := reader.PinEpoch(pinned); err != nil {
		t.Fatal(err)
	}
	before := mustI(t, reader.MustExecute(atPinned))
	if before != 180 {
		t.Fatalf("pre-rebalance pinned count = %d", before)
	}

	s.MustExecute("ALTER CLUSTER ADD NODE")
	seedRows(t, s, "kt", 200, 260) // post-rebalance writes on the new ring
	s.MustExecute("DELETE FROM kt WHERE id >= 250")

	if got := mustI(t, reader.MustExecute(atPinned)); got != before {
		t.Fatalf("pinned AT EPOCH read changed across rebalance: %d -> %d", before, got)
	}
	if got := mustI(t, reader.MustExecute("SELECT COUNT(*) FROM kt")); got != 230 {
		t.Fatalf("latest count = %d, want 230", got)
	}
}

// TestNodeRecoveryRebuildsStaleStores crashes a node under live writes, heals
// it, and checks recovery rebuilt exactly the replicas that missed writes.
func TestNodeRecoveryRebuildsStaleStores(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE kt (id INTEGER, v INTEGER) SEGMENTED BY HASH(id) KSAFE 1")
	s.MustExecute("CREATE TABLE rep (id INTEGER, v INTEGER) UNSEGMENTED ALL NODES")
	seedRows(t, s, "kt", 0, 100)
	seedRows(t, s, "rep", 0, 30)

	down := c.Node(1)
	down.SetDown(true)
	// Writes during the outage land on the surviving replicas and mark the
	// skipped stores stale.
	seedRows(t, s, "kt", 100, 200)
	s.MustExecute("DELETE FROM kt WHERE id < 10")
	seedRows(t, s, "rep", 30, 60)
	stale := 0
	for _, tbl := range c.Catalog().Tables() {
		for _, st := range tbl.Stores {
			if st.Stale() {
				stale++
			}
		}
		for r := range tbl.Buddies {
			for _, st := range tbl.Buddies[r] {
				if st.Stale() {
					stale++
				}
			}
		}
	}
	if stale == 0 {
		t.Fatal("no store went stale during the outage — the scenario did not run")
	}

	// Healing runs synchronous recovery: the node returns UP with every stale
	// replica rebuilt from its buddies.
	down.SetDown(false)
	if got := down.State(); got != NodeUp {
		t.Fatalf("healed node state = %v, want UP", got)
	}
	noStaleStores(t, c)
	if e := down.RecoveryEpoch(); e == 0 {
		t.Fatal("recovery epoch never recorded")
	}

	// The recovered node serves consistent reads.
	s1 := sess(t, c, 1)
	if n := mustI(t, s1.MustExecute("SELECT COUNT(*) FROM kt")); n != 190 {
		t.Fatalf("recovered node count = %d, want 190", n)
	}
	if n := mustI(t, s1.MustExecute("SELECT COUNT(*) FROM rep")); n != 60 {
		t.Fatalf("recovered replicated count = %d, want 60", n)
	}
	// Replica pairs agree store-for-store again.
	tbl, _ := c.Catalog().Table("kt")
	n := len(tbl.Ring)
	for seg := range tbl.Ring {
		vis := storage.Visibility{Epoch: c.LastEpoch()}
		host := (seg + 1) % n
		if p, b := tbl.Stores[seg].RowCount(vis), tbl.Buddies[0][host].RowCount(vis); p != b {
			t.Fatalf("segment %d: primary %d rows, buddy %d rows", seg, p, b)
		}
	}
	// The monitoring surface recorded the recovery.
	recoveries := 0
	for _, op := range c.RebalanceOps() {
		if op.Kind == "recovery" && op.Status == "complete" {
			recoveries++
		}
	}
	if recoveries == 0 {
		t.Fatalf("rebalance_operations has no recovery entries: %+v", c.RebalanceOps())
	}
}

// TestRecoveringNodeServesOnlyMonitoring: a RECOVERING node accepts sessions
// for v_monitor/v_catalog reads, but rejects user statements until caught up.
func TestRecoveringNodeServesOnlyMonitoring(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE kt (id INTEGER) SEGMENTED BY HASH(id) KSAFE 1")

	n := c.Node(1)
	n.setState(NodeRecovering)
	defer n.setState(NodeUp)
	rs, err := c.Connect(1)
	if err != nil {
		t.Fatalf("RECOVERING node must accept sessions: %v", err)
	}
	defer rs.Close()
	res, err := rs.Execute("SELECT node_state FROM v_monitor.node_states")
	if err != nil {
		t.Fatalf("monitoring read on RECOVERING node: %v", err)
	}
	foundRecovering := false
	for _, r := range res.Rows {
		if r[0].S == "RECOVERING" {
			foundRecovering = true
		}
	}
	if !foundRecovering {
		t.Fatal("node_states does not report the RECOVERING state")
	}
	if _, err := rs.Execute("SELECT COUNT(*) FROM kt"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("user read on RECOVERING node = %v, want ErrNodeDown", err)
	}
	if _, err := rs.Execute("SELECT table_name FROM v_catalog.tables"); err != nil {
		t.Fatalf("catalog read on RECOVERING node: %v", err)
	}
}
