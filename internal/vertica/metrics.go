package vertica

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"vsfabric/internal/obs"
)

// This file is the node metrics/health endpoint: a small HTTP listener
// (off by default, enabled by Config.MetricsAddr) serving
//
//   /metrics — Prometheus text exposition: every obs counter, the latency
//              histograms re-expressed as cumulative le-bucketed series,
//              resource-pool occupancy and queue depth, container-cache
//              hit rates, WAL bytes/fsyncs, data-collector spool sizes,
//              query-event totals, and per-node state gauges.
//   /healthz — 200 when every non-removed node is UP, 503 otherwise, with
//              one "node state" line per node either way. Suitable as a
//              liveness/readiness probe for the whole fabric node.
//
// The handler snapshots the collector on every scrape; nothing is cached,
// so a scrape always reflects the instant it was served.

// metricsServer owns the listener so Close can unblock Serve and release
// the port deterministically.
type metricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// startMetrics binds addr and serves /metrics and /healthz until Close.
// Binding ":0" picks a free port; MetricsAddr() reports the bound address.
func (c *Cluster) startMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", c.serveMetrics)
	mux.HandleFunc("/healthz", c.serveHealthz)
	srv := &http.Server{Handler: mux}
	c.metrics = &metricsServer{ln: ln, srv: srv}
	go srv.Serve(ln)
	return nil
}

func (m *metricsServer) stop() {
	m.srv.Close()
	m.ln.Close()
}

// MetricsAddr returns the bound address of the metrics listener ("" when
// the endpoint is disabled). Tests bind ":0" and read the port from here.
func (c *Cluster) MetricsAddr() string {
	if c.metrics == nil {
		return ""
	}
	return c.metrics.ln.Addr().String()
}

// promEscape escapes a label value per the Prometheus text format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func (c *Cluster) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	// Counters: one family, counter name as a label so new counters never
	// need a registry change.
	fmt.Fprintf(&b, "# HELP vsfabric_counter_total Engine counters by internal name.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_counter_total counter\n")
	for _, ctr := range c.mon.SortedCounters() {
		fmt.Fprintf(&b, "vsfabric_counter_total{name=%q} %d\n", promEscape(ctr.Name), ctr.Value)
	}

	// Latency histograms: log₂ buckets re-expressed as cumulative
	// Prometheus buckets in seconds, with the overflow bucket folded
	// into +Inf.
	fmt.Fprintf(&b, "# HELP vsfabric_latency_seconds Span latency distributions by operation.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_latency_seconds histogram\n")
	hists := c.mon.Histograms()
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	for _, h := range hists {
		var cum int64
		for _, bk := range h.Buckets {
			cum += bk.Count
			if bk.UpperBound == time.Duration(math.MaxInt64) {
				continue // folded into +Inf below
			}
			fmt.Fprintf(&b, "vsfabric_latency_seconds_bucket{op=%q,le=\"%g\"} %d\n",
				promEscape(h.Name), bk.UpperBound.Seconds(), cum)
		}
		fmt.Fprintf(&b, "vsfabric_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", promEscape(h.Name), h.Count)
		fmt.Fprintf(&b, "vsfabric_latency_seconds_count{op=%q} %d\n", promEscape(h.Name), h.Count)
	}

	// Resource pools: occupancy gauges plus lifetime admission counters.
	fmt.Fprintf(&b, "# HELP vsfabric_pool_running Statements currently admitted per pool.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_pool_running gauge\n")
	pools := c.pools.List()
	for _, st := range pools {
		fmt.Fprintf(&b, "vsfabric_pool_running{pool=%q} %d\n", promEscape(st.Name), st.Running)
	}
	fmt.Fprintf(&b, "# HELP vsfabric_pool_queue_depth Statements parked in the admission queue per pool.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_pool_queue_depth gauge\n")
	for _, st := range pools {
		fmt.Fprintf(&b, "vsfabric_pool_queue_depth{pool=%q} %d\n", promEscape(st.Name), st.QueueLen)
	}
	fmt.Fprintf(&b, "# HELP vsfabric_pool_memory_inuse_bytes Reserved memory per pool.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_pool_memory_inuse_bytes gauge\n")
	for _, st := range pools {
		fmt.Fprintf(&b, "vsfabric_pool_memory_inuse_bytes{pool=%q} %d\n", promEscape(st.Name), st.MemInUse)
	}
	fmt.Fprintf(&b, "# HELP vsfabric_pool_admitted_total Lifetime admissions per pool.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_pool_admitted_total counter\n")
	for _, st := range pools {
		fmt.Fprintf(&b, "vsfabric_pool_admitted_total{pool=%q} %d\n", promEscape(st.Name), st.Admitted)
	}
	fmt.Fprintf(&b, "# HELP vsfabric_pool_queued_total Lifetime admissions that waited in the queue first.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_pool_queued_total counter\n")
	for _, st := range pools {
		fmt.Fprintf(&b, "vsfabric_pool_queued_total{pool=%q} %d\n", promEscape(st.Name), st.Queued)
	}
	fmt.Fprintf(&b, "# HELP vsfabric_pool_refused_total Lifetime queue timeouts and rejections per pool.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_pool_refused_total counter\n")
	for _, st := range pools {
		fmt.Fprintf(&b, "vsfabric_pool_refused_total{pool=%q,reason=\"timeout\"} %d\n", promEscape(st.Name), st.Timeouts)
		fmt.Fprintf(&b, "vsfabric_pool_refused_total{pool=%q,reason=\"rejected\"} %d\n", promEscape(st.Name), st.Rejections)
	}

	// Container cache. In-memory clusters have no cache; the series still
	// exist (all-zero) so dashboards can rely on them.
	var hits, misses int64
	var bytes int
	if c.cache != nil {
		hits, misses, bytes = c.cache.Stats()
	}
	fmt.Fprintf(&b, "# HELP vsfabric_container_cache_hits_total Decoded-container cache hits.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_container_cache_hits_total counter\n")
	fmt.Fprintf(&b, "vsfabric_container_cache_hits_total %d\n", hits)
	fmt.Fprintf(&b, "# HELP vsfabric_container_cache_misses_total Decoded-container cache misses.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_container_cache_misses_total counter\n")
	fmt.Fprintf(&b, "vsfabric_container_cache_misses_total %d\n", misses)
	fmt.Fprintf(&b, "# HELP vsfabric_container_cache_bytes Resident bytes in the decoded-container cache.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_container_cache_bytes gauge\n")
	fmt.Fprintf(&b, "vsfabric_container_cache_bytes %d\n", bytes)

	// WAL: always emitted (zero on in-memory clusters) so dashboards can
	// rely on the series existing.
	fmt.Fprintf(&b, "# HELP vsfabric_wal_bytes_total Bytes appended to the write-ahead log.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_wal_bytes_total counter\n")
	fmt.Fprintf(&b, "vsfabric_wal_bytes_total %d\n", c.mon.Counter("wal.bytes"))
	fmt.Fprintf(&b, "# HELP vsfabric_wal_fsyncs_total WAL fsync calls.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_wal_fsyncs_total counter\n")
	fmt.Fprintf(&b, "vsfabric_wal_fsyncs_total %d\n", c.mon.Counter("wal.fsyncs"))

	// Data-collector spool: on-disk footprint per component.
	if c.dcs != nil {
		fmt.Fprintf(&b, "# HELP vsfabric_dc_spool_bytes On-disk bytes per data-collector component.\n")
		fmt.Fprintf(&b, "# TYPE vsfabric_dc_spool_bytes gauge\n")
		stats := c.dcs.Stats()
		for _, st := range stats {
			fmt.Fprintf(&b, "vsfabric_dc_spool_bytes{component=%q} %d\n", promEscape(st.Component), st.Bytes)
		}
		fmt.Fprintf(&b, "# HELP vsfabric_dc_spool_records Spooled records per data-collector component.\n")
		fmt.Fprintf(&b, "# TYPE vsfabric_dc_spool_records gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "vsfabric_dc_spool_records{component=%q} %d\n", promEscape(st.Component), st.Records)
		}
		fmt.Fprintf(&b, "# HELP vsfabric_dc_spool_segments Segment files per data-collector component.\n")
		fmt.Fprintf(&b, "# TYPE vsfabric_dc_spool_segments gauge\n")
		for _, st := range stats {
			fmt.Fprintf(&b, "vsfabric_dc_spool_segments{component=%q} %d\n", promEscape(st.Component), st.Segments)
		}
	}

	// Query events by type.
	fmt.Fprintf(&b, "# HELP vsfabric_query_events_total Engine query events by type.\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_query_events_total counter\n")
	evCounts := map[obs.QueryEventType]int64{}
	for _, ev := range c.mon.QueryEvents() {
		evCounts[ev.Type]++
	}
	evTypes := make([]string, 0, len(evCounts))
	for t := range evCounts {
		evTypes = append(evTypes, string(t))
	}
	sort.Strings(evTypes)
	for _, t := range evTypes {
		fmt.Fprintf(&b, "vsfabric_query_events_total{type=%q} %d\n", promEscape(t), evCounts[obs.QueryEventType(t)])
	}

	// Node state: a one-hot gauge per (node, state) plus a plain up gauge.
	fmt.Fprintf(&b, "# HELP vsfabric_node_state Node state one-hot (1 for the current state).\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_node_state gauge\n")
	nodes := c.nodeList()
	for _, n := range nodes {
		fmt.Fprintf(&b, "vsfabric_node_state{node=%q,state=%q} 1\n",
			promEscape(n.Name), promEscape(strings.ToLower(n.State().String())))
	}
	fmt.Fprintf(&b, "# HELP vsfabric_node_up Whether the node is UP (1) or not (0).\n")
	fmt.Fprintf(&b, "# TYPE vsfabric_node_up gauge\n")
	for _, n := range nodes {
		up := 0
		if n.State() == NodeUp {
			up = 1
		}
		fmt.Fprintf(&b, "vsfabric_node_up{node=%q} %d\n", promEscape(n.Name), up)
	}

	w.Write([]byte(b.String()))
}

// serveHealthz reports 200 only when every non-removed node is UP; a DOWN
// or RECOVERING node degrades the whole endpoint to 503 so orchestrators
// see the fabric as not-ready until recovery completes.
func (c *Cluster) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := true
	var b strings.Builder
	for _, n := range c.nodeList() {
		st := n.State()
		if st == NodeRemoved {
			continue
		}
		if st != NodeUp {
			healthy = false
		}
		fmt.Fprintf(&b, "%s %s\n", n.Name, st.String())
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	b.WriteString(map[bool]string{true: "ok", false: "degraded"}[healthy])
	b.WriteString("\n")
	w.Write([]byte(b.String()))
}
