package vertica

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?(?:[0-9]*\.)?[0-9]+(?:[eE][-+]?[0-9]+)?)$`)
	promLabelPair  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText validates body against the Prometheus text exposition rules
// this test suite enforces: every non-comment line is a well-formed sample,
// every sample's family has a preceding # TYPE, and label pairs parse.
func parsePromText(t *testing.T, body string) []promSample {
	t.Helper()
	typed := map[string]string{}
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for ln := 1; sc.Scan(); ln++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln, line)
			}
			if !promMetricName.MatchString(parts[2]) {
				t.Fatalf("line %d: bad metric name %q", ln, parts[2])
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = strings.TrimSpace(parts[3])
			}
			continue
		}
		m := promSampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", ln, line)
		}
		name := m[1]
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_count")
		if typed[name] == "" && typed[family] == "" {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln, name)
		}
		labels := map[string]string{}
		if m[2] != "" {
			for _, pair := range splitLabelPairs(m[2][1 : len(m[2])-1]) {
				if !promLabelPair.MatchString(pair) {
					t.Fatalf("line %d: bad label pair %q", ln, pair)
				}
				eq := strings.IndexByte(pair, '=')
				labels[pair[:eq]] = pair[eq+2 : len(pair)-1]
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q", ln, m[3])
		}
		samples = append(samples, promSample{name: name, labels: labels, value: v})
	}
	return samples
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func metricsBody(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint drives a small workload through a cluster with the
// metrics listener enabled and validates the full scrape under the text
// exposition rules, including histogram bucket monotonicity and the
// presence of the pool/cache/WAL/node series the issue requires.
func TestMetricsEndpoint(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 2, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr is empty with a configured listener")
	}
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustExecute("CREATE TABLE mt (id INTEGER, v VARCHAR) SEGMENTED BY HASH(id)")
	s.MustExecute("INSERT INTO mt VALUES (1, 'a'), (2, 'b'), (3, 'c')")
	for i := 0; i < 5; i++ {
		s.MustExecute("SELECT COUNT(*) FROM mt WHERE id >= 1")
	}

	code, body := metricsBody(t, addr, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	samples := parsePromText(t, body)

	byName := map[string][]promSample{}
	for _, sm := range samples {
		byName[sm.name] = append(byName[sm.name], sm)
	}
	for _, want := range []string{
		"vsfabric_counter_total",
		"vsfabric_latency_seconds_bucket",
		"vsfabric_latency_seconds_count",
		"vsfabric_pool_running",
		"vsfabric_pool_queue_depth",
		"vsfabric_pool_admitted_total",
		"vsfabric_container_cache_hits_total",
		"vsfabric_container_cache_misses_total",
		"vsfabric_container_cache_bytes",
		"vsfabric_wal_bytes_total",
		"vsfabric_wal_fsyncs_total",
		"vsfabric_node_state",
		"vsfabric_node_up",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("/metrics is missing %s", want)
		}
	}

	// Histogram contract: per op, buckets are cumulative non-decreasing,
	// an le="+Inf" bucket exists, and it equals the _count sample.
	byOp := map[string][]promSample{}
	for _, sm := range byName["vsfabric_latency_seconds_bucket"] {
		byOp[sm.labels["op"]] = append(byOp[sm.labels["op"]], sm)
	}
	counts := map[string]float64{}
	for _, sm := range byName["vsfabric_latency_seconds_count"] {
		counts[sm.labels["op"]] = sm.value
	}
	if len(byOp) == 0 {
		t.Fatal("no latency buckets after a query workload")
	}
	for op, buckets := range byOp {
		type bv struct {
			le  float64
			inf bool
			v   float64
		}
		var bs []bv
		for _, sm := range buckets {
			le := sm.labels["le"]
			if le == "+Inf" {
				bs = append(bs, bv{inf: true, v: sm.value})
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("op %s: bad le %q", op, le)
			}
			bs = append(bs, bv{le: f, v: sm.value})
		}
		sort.Slice(bs, func(i, j int) bool {
			if bs[i].inf != bs[j].inf {
				return bs[j].inf
			}
			return bs[i].le < bs[j].le
		})
		if !bs[len(bs)-1].inf {
			t.Fatalf("op %s: no le=\"+Inf\" bucket", op)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].v < bs[i-1].v {
				t.Fatalf("op %s: bucket counts not cumulative: %v", op, bs)
			}
		}
		if got := bs[len(bs)-1].v; got != counts[op] {
			t.Fatalf("op %s: +Inf bucket %v != count %v", op, got, counts[op])
		}
	}

	// The execute histogram must be present after 5 queries.
	if _, ok := byOp["execute"]; !ok {
		t.Errorf("no latency series for op=execute: %v", mapsKeys(byOp))
	}

	// Per-node state: every node UP, one-hot gauges say so.
	up := 0
	for _, sm := range byName["vsfabric_node_up"] {
		if sm.value == 1 {
			up++
		}
	}
	if up != 2 {
		t.Fatalf("vsfabric_node_up reports %d of 2 nodes up", up)
	}
}

func mapsKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// TestHealthzReflectsNodeStates checks /healthz flips to 503 when a node
// goes down and back to 200 after it heals.
func TestHealthzReflectsNodeStates(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 2, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := c.MetricsAddr()

	code, body := metricsBody(t, addr, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q with all nodes up", code, body)
	}
	c.Nodes()[1].SetDown(true)
	code, body = metricsBody(t, addr, "/healthz")
	if code != 503 {
		t.Fatalf("/healthz = %d with a node down", code)
	}
	if !strings.Contains(body, "DOWN") || !strings.Contains(body, "degraded") {
		t.Fatalf("/healthz body %q does not name the down node", body)
	}
	c.Nodes()[1].SetDown(false)
	code, _ = metricsBody(t, addr, "/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d after the node healed", code)
	}
}

// TestMetricsQueryEventSeries checks raised query events surface as
// vsfabric_query_events_total{type=...} samples.
func TestMetricsQueryEventSeries(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 1, MetricsAddr: "127.0.0.1:0", SlowQueryThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustExecute("CREATE TABLE qe (id INTEGER)")
	s.MustExecute("INSERT INTO qe VALUES (1)")
	s.MustExecute("SELECT id FROM qe")

	_, body := metricsBody(t, c.MetricsAddr(), "/metrics")
	samples := parsePromText(t, body)
	found := false
	for _, sm := range samples {
		if sm.name == "vsfabric_query_events_total" && sm.labels["type"] == "SLOW_QUERY" && sm.value >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no vsfabric_query_events_total{type=\"SLOW_QUERY\"} sample:\n%s", grepLines(body, "query_events"))
	}
}

func grepLines(body, needle string) string {
	var out []string
	for _, l := range strings.Split(body, "\n") {
		if strings.Contains(l, needle) {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return "(no matching lines)"
	}
	return fmt.Sprint(strings.Join(out, "\n"))
}
