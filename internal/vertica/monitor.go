package vertica

import (
	"fmt"
	"sort"
	"time"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// monitorTable synthesizes the observability half of v_monitor: the system
// tables backed by the cluster's span/event collector (query_requests,
// load_streams, resilience_events, counters) and the live projection storage
// statistics (projection_storage). Reads of these tables are themselves
// exempt from span recording (see startExecSpan), so monitoring a cluster
// does not perturb the history being monitored.
func (s *Session) monitorTable(name string, vis storage.Visibility) ([]types.Row, types.Schema, error) {
	switch name {
	case "v_monitor.query_requests":
		schema := types.NewSchema(
			types.Column{Name: "request_id", T: types.Int64},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "client_name", T: types.Varchar},
			types.Column{Name: "request", T: types.Varchar},
			types.Column{Name: "start_timestamp", T: types.Varchar},
			types.Column{Name: "request_duration_us", T: types.Int64},
			types.Column{Name: "result_rows", T: types.Int64},
			types.Column{Name: "success", T: types.Bool},
			types.Column{Name: "error_message", T: types.Varchar},
		)
		var rows []types.Row
		for _, sp := range s.cluster.mon.Spans() {
			if sp.Name != "execute" {
				continue
			}
			rows = append(rows, types.Row{
				types.IntValue(int64(sp.ID)),
				types.StringValue(sp.Node),
				types.StringValue(sp.Peer),
				types.StringValue(sp.Detail),
				types.StringValue(sp.Start.Format(time.RFC3339Nano)),
				types.IntValue(sp.Duration.Microseconds()),
				types.IntValue(sp.Rows),
				types.BoolValue(sp.OK()),
				types.StringValue(sp.Err),
			})
		}
		return rows, schema, nil

	case "v_monitor.load_streams":
		schema := types.NewSchema(
			types.Column{Name: "stream_id", T: types.Int64},
			types.Column{Name: "table_name", T: types.Varchar},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "client_name", T: types.Varchar},
			types.Column{Name: "accepted_row_count", T: types.Int64},
			types.Column{Name: "rejected_row_count", T: types.Int64},
			types.Column{Name: "input_bytes", T: types.Int64},
			types.Column{Name: "duration_us", T: types.Int64},
			types.Column{Name: "success", T: types.Bool},
			types.Column{Name: "error_message", T: types.Varchar},
		)
		var rows []types.Row
		for _, sp := range s.cluster.mon.Spans() {
			if sp.Name != "copy" {
				continue
			}
			rows = append(rows, types.Row{
				types.IntValue(int64(sp.ID)),
				types.StringValue(sp.Detail),
				types.StringValue(sp.Node),
				types.StringValue(sp.Peer),
				types.IntValue(sp.Rows),
				types.IntValue(sp.Rejected),
				types.IntValue(sp.Bytes),
				types.IntValue(sp.Duration.Microseconds()),
				types.BoolValue(sp.OK()),
				types.StringValue(sp.Err),
			})
		}
		return rows, schema, nil

	case "v_monitor.resilience_events":
		schema := types.NewSchema(
			types.Column{Name: "event_time", T: types.Varchar},
			types.Column{Name: "event_type", T: types.Varchar},
			types.Column{Name: "node_address", T: types.Varchar},
			types.Column{Name: "detail", T: types.Varchar},
		)
		var rows []types.Row
		for _, ev := range s.cluster.mon.Events() {
			rows = append(rows, types.Row{
				types.StringValue(ev.Time.Format(time.RFC3339Nano)),
				types.StringValue(ev.Name),
				types.StringValue(ev.Node),
				types.StringValue(ev.Detail),
			})
		}
		return rows, schema, nil

	case "v_monitor.counters":
		schema := types.NewSchema(
			types.Column{Name: "counter_name", T: types.Varchar},
			types.Column{Name: "counter_value", T: types.Int64},
		)
		counters := s.cluster.mon.Counters()
		names := make([]string, 0, len(counters))
		for n := range counters {
			names = append(names, n)
		}
		sort.Strings(names)
		var rows []types.Row
		for _, n := range names {
			rows = append(rows, types.Row{
				types.StringValue(n),
				types.IntValue(counters[n]),
			})
		}
		return rows, schema, nil

	case "v_monitor.projection_storage":
		schema := types.NewSchema(
			types.Column{Name: "projection_name", T: types.Varchar},
			types.Column{Name: "anchor_table_name", T: types.Varchar},
			types.Column{Name: "node_id", T: types.Int64},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "projection_role", T: types.Varchar},
			types.Column{Name: "ros_containers", T: types.Int64},
			types.Column{Name: "wos_rows", T: types.Int64},
			types.Column{Name: "visible_rows", T: types.Int64},
			types.Column{Name: "data_bytes", T: types.Int64},
		)
		var rows []types.Row
		addStore := func(t string, node int, role string, st *storage.Store) {
			rows = append(rows, types.Row{
				types.StringValue(fmt.Sprintf("%s_%s_node%04d", t, role, node)),
				types.StringValue(t),
				types.IntValue(int64(node)),
				types.StringValue(s.cluster.nodes[node].Name),
				types.StringValue(role),
				types.IntValue(int64(st.ContainerCount())),
				types.IntValue(int64(st.WOSLen())),
				types.IntValue(int64(st.RowCount(vis))),
				types.IntValue(int64(st.DataBytes())),
			})
		}
		for _, t := range s.cluster.cat.Tables() {
			for i, st := range t.Stores {
				addStore(t.Def.Name, i, "super", st)
			}
			for r, reps := range t.Buddies {
				for i, st := range reps {
					addStore(t.Def.Name, i, fmt.Sprintf("buddy%d", r+1), st)
				}
			}
		}
		return rows, schema, nil

	default:
		return nil, types.Schema{}, fmt.Errorf("vertica: unknown system table %q", name)
	}
}
