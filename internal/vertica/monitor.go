package vertica

import (
	"fmt"
	"strings"
	"time"

	"vsfabric/internal/obs"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// monitorTable synthesizes the observability half of v_monitor: the system
// tables backed by the cluster's span/event collector (query_requests,
// load_streams, resilience_events, counters) and the live projection storage
// statistics (projection_storage). Reads of these tables are themselves
// exempt from span recording (see startExecSpan), so monitoring a cluster
// does not perturb the history being monitored.
func (s *Session) monitorTable(name string, vis storage.Visibility) ([]types.Row, types.Schema, error) {
	switch name {
	case "v_monitor.query_requests":
		schema := types.NewSchema(
			types.Column{Name: "request_id", T: types.Int64},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "client_name", T: types.Varchar},
			types.Column{Name: "request", T: types.Varchar},
			types.Column{Name: "start_timestamp", T: types.Varchar},
			types.Column{Name: "request_duration_us", T: types.Int64},
			types.Column{Name: "result_rows", T: types.Int64},
			types.Column{Name: "success", T: types.Bool},
			types.Column{Name: "error_message", T: types.Varchar},
		)
		var rows []types.Row
		for _, sp := range s.cluster.mon.Spans() {
			if sp.Name != "execute" {
				continue
			}
			rows = append(rows, types.Row{
				types.IntValue(int64(sp.ID)),
				types.StringValue(sp.Node),
				types.StringValue(sp.Peer),
				types.StringValue(sp.Detail),
				types.StringValue(sp.Start.Format(time.RFC3339Nano)),
				types.IntValue(sp.Duration.Microseconds()),
				types.IntValue(sp.Rows),
				types.BoolValue(sp.OK()),
				types.StringValue(sp.Err),
			})
		}
		return rows, schema, nil

	case "v_monitor.load_streams":
		schema := types.NewSchema(
			types.Column{Name: "stream_id", T: types.Int64},
			types.Column{Name: "table_name", T: types.Varchar},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "client_name", T: types.Varchar},
			types.Column{Name: "accepted_row_count", T: types.Int64},
			types.Column{Name: "rejected_row_count", T: types.Int64},
			types.Column{Name: "input_bytes", T: types.Int64},
			types.Column{Name: "duration_us", T: types.Int64},
			types.Column{Name: "success", T: types.Bool},
			types.Column{Name: "error_message", T: types.Varchar},
		)
		var rows []types.Row
		for _, sp := range s.cluster.mon.Spans() {
			if sp.Name != "copy" {
				continue
			}
			rows = append(rows, types.Row{
				types.IntValue(int64(sp.ID)),
				types.StringValue(sp.Detail),
				types.StringValue(sp.Node),
				types.StringValue(sp.Peer),
				types.IntValue(sp.Rows),
				types.IntValue(sp.Rejected),
				types.IntValue(sp.Bytes),
				types.IntValue(sp.Duration.Microseconds()),
				types.BoolValue(sp.OK()),
				types.StringValue(sp.Err),
			})
		}
		return rows, schema, nil

	case "v_monitor.resilience_events":
		schema := types.NewSchema(
			types.Column{Name: "event_time", T: types.Varchar},
			types.Column{Name: "event_type", T: types.Varchar},
			types.Column{Name: "node_address", T: types.Varchar},
			types.Column{Name: "detail", T: types.Varchar},
		)
		var rows []types.Row
		for _, ev := range s.cluster.mon.Events() {
			rows = append(rows, types.Row{
				types.StringValue(ev.Time.Format(time.RFC3339Nano)),
				types.StringValue(ev.Name),
				types.StringValue(ev.Node),
				types.StringValue(ev.Detail),
			})
		}
		return rows, schema, nil

	case "v_monitor.counters":
		schema := types.NewSchema(
			types.Column{Name: "counter_name", T: types.Varchar},
			types.Column{Name: "counter_value", T: types.Int64},
		)
		var rows []types.Row
		for _, ctr := range s.cluster.mon.SortedCounters() {
			rows = append(rows, types.Row{
				types.StringValue(ctr.Name),
				types.IntValue(ctr.Value),
			})
		}
		return rows, schema, nil

	case "v_monitor.resource_pools":
		return resourcePoolRows(s.cluster.pools)

	case "v_monitor.resource_queue_events":
		return resourceQueueEventRows(s.cluster.pools)

	case "v_monitor.job_traces":
		return jobTraces(s.cluster.mon)

	case "v_monitor.latency_histograms":
		return latencyHistograms(s.cluster.mon)

	case "v_monitor.projection_storage":
		schema := types.NewSchema(
			types.Column{Name: "projection_name", T: types.Varchar},
			types.Column{Name: "anchor_table_name", T: types.Varchar},
			types.Column{Name: "node_id", T: types.Int64},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "projection_role", T: types.Varchar},
			types.Column{Name: "ros_containers", T: types.Int64},
			types.Column{Name: "wos_rows", T: types.Int64},
			types.Column{Name: "visible_rows", T: types.Int64},
			types.Column{Name: "data_bytes", T: types.Int64},
		)
		var rows []types.Row
		addStore := func(t string, node int, role string, st *storage.Store) {
			rows = append(rows, types.Row{
				types.StringValue(fmt.Sprintf("%s_%s_node%04d", t, role, node)),
				types.StringValue(t),
				types.IntValue(int64(node)),
				types.StringValue(s.cluster.node(node).Name),
				types.StringValue(role),
				types.IntValue(int64(st.ContainerCount())),
				types.IntValue(int64(st.WOSLen())),
				types.IntValue(int64(st.RowCount(vis))),
				types.IntValue(int64(st.DataBytes())),
			})
		}
		for _, t := range s.cluster.cat.Tables() {
			for i, st := range t.Stores {
				addStore(t.Def.Name, t.Ring[i], "super", st)
			}
			for r, reps := range t.Buddies {
				for i, st := range reps {
					addStore(t.Def.Name, t.Ring[i], fmt.Sprintf("buddy%d", r+1), st)
				}
			}
		}
		return rows, schema, nil

	case "v_monitor.node_states":
		schema := types.NewSchema(
			types.Column{Name: "node_id", T: types.Int64},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "node_address", T: types.Varchar},
			types.Column{Name: "node_state", T: types.Varchar},
			types.Column{Name: "recovery_epoch", T: types.Int64},
			types.Column{Name: "open_sessions", T: types.Int64},
		)
		var rows []types.Row
		for _, n := range s.cluster.nodeList() {
			rows = append(rows, types.Row{
				types.IntValue(int64(n.ID)),
				types.StringValue(n.Name),
				types.StringValue(n.Addr),
				types.StringValue(n.State().String()),
				types.IntValue(int64(n.RecoveryEpoch())),
				types.IntValue(int64(s.cluster.OpenSessions(n.ID))),
			})
		}
		return rows, schema, nil

	case "v_monitor.query_plans":
		schema := types.NewSchema(
			types.Column{Name: "plan_id", T: types.Int64},
			types.Column{Name: "query", T: types.Varchar},
			types.Column{Name: "anchor_table", T: types.Varchar},
			types.Column{Name: "join_order", T: types.Varchar},
			types.Column{Name: "estimated_rows", T: types.Int64},
			types.Column{Name: "actual_rows", T: types.Int64},
			types.Column{Name: "containers_scanned", T: types.Int64},
			types.Column{Name: "containers_pruned", T: types.Int64},
			types.Column{Name: "pushdown", T: types.Varchar},
			types.Column{Name: "vectorized", T: types.Bool},
			types.Column{Name: "epoch", T: types.Int64},
		)
		var rows []types.Row
		for _, p := range s.cluster.plans.snapshot() {
			rows = append(rows, types.Row{
				types.IntValue(int64(p.ID)),
				types.StringValue(p.Query),
				types.StringValue(p.Table),
				types.StringValue(p.JoinOrder),
				types.IntValue(p.EstRows),
				types.IntValue(p.ActualRows),
				types.IntValue(p.ContainersScanned),
				types.IntValue(p.ContainersPruned),
				types.StringValue(p.Pushdown),
				types.BoolValue(p.Vectorized),
				types.IntValue(int64(p.Epoch)),
			})
		}
		return rows, schema, nil

	case "v_monitor.query_events":
		return queryEventRows(s.cluster.mon)

	case "v_monitor.data_collector":
		return s.cluster.dataCollectorRows()

	case "v_monitor.rebalance_operations":
		schema := types.NewSchema(
			types.Column{Name: "operation_id", T: types.Int64},
			types.Column{Name: "operation_type", T: types.Varchar},
			types.Column{Name: "table_name", T: types.Varchar},
			types.Column{Name: "node_id", T: types.Int64},
			types.Column{Name: "status", T: types.Varchar},
			types.Column{Name: "rows_placed", T: types.Int64},
			types.Column{Name: "rows_moved", T: types.Int64},
			types.Column{Name: "containers", T: types.Int64},
			types.Column{Name: "start_epoch", T: types.Int64},
			types.Column{Name: "end_epoch", T: types.Int64},
			types.Column{Name: "error_message", T: types.Varchar},
		)
		var rows []types.Row
		for _, op := range s.cluster.reb.snapshot() {
			rows = append(rows, types.Row{
				types.IntValue(int64(op.ID)),
				types.StringValue(op.Kind),
				types.StringValue(op.Table),
				types.IntValue(int64(op.Node)),
				types.StringValue(op.Status),
				types.IntValue(int64(op.Rows)),
				types.IntValue(int64(op.RowsMoved)),
				types.IntValue(int64(op.Containers)),
				types.IntValue(int64(op.StartEpoch)),
				types.IntValue(int64(op.EndEpoch)),
				types.StringValue(op.Err),
			})
		}
		return rows, schema, nil

	default:
		// v_monitor.dc_<component> reads the durable data-collector spool:
		// the on-disk history that survives restarts, unlike the in-memory
		// rings every other v_monitor table draws from.
		if comp, ok := strings.CutPrefix(name, "v_monitor.dc_"); ok {
			return s.cluster.dcTableRows(comp)
		}
		return nil, types.Schema{}, fmt.Errorf("vertica: unknown system table %q", name)
	}
}

// queryEventRows renders v_monitor.query_events from the collector's typed
// query-event ring.
func queryEventRows(mon *obs.Collector) ([]types.Row, types.Schema, error) {
	schema := types.NewSchema(
		types.Column{Name: "event_time", T: types.Varchar},
		types.Column{Name: "event_type", T: types.Varchar},
		types.Column{Name: "node_name", T: types.Varchar},
		types.Column{Name: "trace_id", T: types.Varchar},
		types.Column{Name: "query", T: types.Varchar},
		types.Column{Name: "detail", T: types.Varchar},
		types.Column{Name: "value", T: types.Int64},
		types.Column{Name: "threshold", T: types.Int64},
	)
	var rows []types.Row
	for _, ev := range mon.QueryEvents() {
		rows = append(rows, types.Row{
			types.StringValue(ev.Time.Format(time.RFC3339Nano)),
			types.StringValue(string(ev.Type)),
			types.StringValue(ev.Node),
			types.StringValue(fmt.Sprintf("%016x", ev.TraceID)),
			types.StringValue(ev.Query),
			types.StringValue(ev.Detail),
			types.IntValue(ev.Value),
			types.IntValue(ev.Threshold),
		})
	}
	return rows, schema, nil
}

// jobTraces rolls every retained distributed trace up to one row per root
// job span (v2s.job / s2v.job) — the Data-Collector-style view a DBA queries
// to see what each connector job did across the whole fabric. The DB-side
// columns (db_rows/db_bytes/rejected_rows) sum only engine execute/copy
// spans, so connector-layer spans wrapping the same work are not counted
// twice.
func jobTraces(mon *obs.Collector) ([]types.Row, types.Schema, error) {
	schema := types.NewSchema(
		types.Column{Name: "trace_id", T: types.Varchar},
		types.Column{Name: "job_type", T: types.Varchar},
		types.Column{Name: "job_name", T: types.Varchar},
		types.Column{Name: "start_timestamp", T: types.Varchar},
		types.Column{Name: "duration_us", T: types.Int64},
		types.Column{Name: "span_count", T: types.Int64},
		types.Column{Name: "node_count", T: types.Int64},
		types.Column{Name: "phase_count", T: types.Int64},
		types.Column{Name: "db_rows", T: types.Int64},
		types.Column{Name: "db_bytes", T: types.Int64},
		types.Column{Name: "rejected_rows", T: types.Int64},
		types.Column{Name: "error_count", T: types.Int64},
		types.Column{Name: "success", T: types.Bool},
	)
	spans := mon.Spans()
	byTrace := make(map[uint64][]obs.Span)
	for _, sp := range spans {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	var rows []types.Row
	for _, root := range spans {
		if !root.Root() || !strings.HasSuffix(root.Name, ".job") {
			continue
		}
		trace := byTrace[root.TraceID]
		nodes := make(map[string]bool)
		var phases, dbRows, dbBytes, rejected, errs int64
		end := root.Start.Add(root.Duration)
		for _, sp := range trace {
			if sp.Node != "" {
				nodes[sp.Node] = true
			}
			if strings.HasPrefix(sp.Name, "s2v.phase") || sp.Name == "s2v.setup" || sp.Name == "v2s.partition" {
				phases++
			}
			if sp.Name == "execute" || sp.Name == "copy" {
				dbRows += sp.Rows
				dbBytes += sp.Bytes
				rejected += sp.Rejected
			}
			if !sp.OK() {
				errs++
			}
			// The root v2s.job span closes at planning time while its tasks
			// are still running, so the job's end-to-end duration is the
			// extent of the whole trace, not the root span alone.
			if e := sp.Start.Add(sp.Duration); e.After(end) {
				end = e
			}
		}
		rows = append(rows, types.Row{
			types.StringValue(fmt.Sprintf("%016x", root.TraceID)),
			types.StringValue(root.Name),
			types.StringValue(root.Detail),
			types.StringValue(root.Start.Format(time.RFC3339Nano)),
			types.IntValue(end.Sub(root.Start).Microseconds()),
			types.IntValue(int64(len(trace))),
			types.IntValue(int64(len(nodes))),
			types.IntValue(phases),
			types.IntValue(dbRows),
			types.IntValue(dbBytes),
			types.IntValue(rejected),
			types.IntValue(errs),
			types.BoolValue(errs == 0 && root.OK()),
		})
	}
	return rows, schema, nil
}

// latencyHistograms renders the collector's per-span-name log₂ latency
// distributions: sample counts, derived percentiles (as fractional
// microseconds — bucket midpoints, under-reporting by at most 25% and
// over-reporting by at most 50%), and the raw buckets as
// "upper_bound_ns:count" pairs.
func latencyHistograms(mon *obs.Collector) ([]types.Row, types.Schema, error) {
	schema := types.NewSchema(
		types.Column{Name: "operation", T: types.Varchar},
		types.Column{Name: "sample_count", T: types.Int64},
		types.Column{Name: "p50_us", T: types.Float64},
		types.Column{Name: "p95_us", T: types.Float64},
		types.Column{Name: "p99_us", T: types.Float64},
		types.Column{Name: "max_us", T: types.Float64},
		types.Column{Name: "buckets", T: types.Varchar},
	)
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	var rows []types.Row
	for _, h := range mon.Histograms() {
		var b strings.Builder
		for i, bk := range h.Buckets {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:%d", bk.UpperBound.Nanoseconds(), bk.Count)
		}
		rows = append(rows, types.Row{
			types.StringValue(h.Name),
			types.IntValue(h.Count),
			types.FloatValue(us(h.P50)),
			types.FloatValue(us(h.P95)),
			types.FloatValue(us(h.P99)),
			types.FloatValue(us(h.Max)),
			types.StringValue(b.String()),
		})
	}
	return rows, schema, nil
}
