package vertica

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"vsfabric/internal/obs"
)

// TestVMonitorQueryRequests pins the query_requests contract: every user
// statement lands one row, monitoring reads are exempt, and disabling the
// collector stops the history without clearing it.
func TestVMonitorQueryRequests(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)")
	s.MustExecute("INSERT INTO t VALUES (1, 1.5), (2, 2.5)")
	s.MustExecute("SELECT id FROM t")

	res := s.MustExecute("SELECT COUNT(*) FROM v_monitor.query_requests")
	v, _ := res.Value()
	if v.I != 3 {
		t.Fatalf("query_requests rows = %d, want 3 (CREATE, INSERT, SELECT)", v.I)
	}
	// The monitoring query itself must not have polluted the history.
	res = s.MustExecute("SELECT COUNT(*) FROM v_monitor.query_requests")
	v, _ = res.Value()
	if v.I != 3 {
		t.Fatalf("query_requests rows after monitoring read = %d, want still 3", v.I)
	}
	// Every recorded request succeeded and names the statement it ran.
	res = s.MustExecute("SELECT request, success FROM v_monitor.query_requests")
	sawSelect := false
	for _, r := range res.Rows {
		if !r[1].AsBool() {
			t.Errorf("request %q recorded success=false", r[0].S)
		}
		if r[0].S == "SELECT id FROM t" {
			sawSelect = true
		}
	}
	if !sawSelect {
		t.Error("query_requests does not record the SELECT's text")
	}

	// A failing statement is recorded with its error message.
	if _, err := s.Execute("SELECT nope FROM t"); err == nil {
		t.Fatal("bad SELECT should fail")
	}
	res = s.MustExecute("SELECT COUNT(*) FROM v_monitor.query_requests WHERE success = FALSE")
	v, _ = res.Value()
	if v.I != 1 {
		t.Fatalf("failed requests = %d, want 1", v.I)
	}

	c.Obs().SetEnabled(false)
	s.MustExecute("SELECT val FROM t")
	res = s.MustExecute("SELECT COUNT(*) FROM v_monitor.query_requests")
	v, _ = res.Value()
	if v.I != 4 {
		t.Fatalf("disabled collector still recorded: rows = %d, want 4", v.I)
	}
}

// TestVMonitorLoadStreams: every COPY shows up in load_streams with its
// accepted/rejected row accounting and byte count.
func TestVMonitorLoadStreams(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE lt (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)")
	data := "1,1.5\n2,2.5\n3,3.5\nbad-row\n"
	res, err := s.CopyFrom("COPY lt FROM STDIN FORMAT CSV DIRECT REJECTMAX 10", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if res.Copy.Loaded != 3 || res.Copy.Rejected != 1 {
		t.Fatalf("copy loaded/rejected = %d/%d, want 3/1", res.Copy.Loaded, res.Copy.Rejected)
	}
	mres := s.MustExecute("SELECT accepted_row_count, rejected_row_count, input_bytes, success FROM v_monitor.load_streams")
	if len(mres.Rows) != 1 {
		t.Fatalf("load_streams rows = %d, want 1", len(mres.Rows))
	}
	r := mres.Rows[0]
	if r[0].I != 3 || r[1].I != 1 {
		t.Errorf("load_streams accepted/rejected = %d/%d, want 3/1", r[0].I, r[1].I)
	}
	if r[2].I != int64(len(data)) {
		t.Errorf("load_streams input_bytes = %d, want %d", r[2].I, len(data))
	}
	if !r[3].AsBool() {
		t.Error("load_streams success = false for a completed COPY")
	}
}

// TestVMonitorProjectionStorage: per-node projection statistics reflect the
// stored data.
func TestVMonitorProjectionStorage(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE ps (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 200; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d.5)", i, i))
	}
	s.MustExecute("INSERT INTO ps VALUES " + strings.Join(vals, ", "))

	res := s.MustExecute("SELECT visible_rows FROM v_monitor.projection_storage WHERE anchor_table_name = 'ps'")
	if len(res.Rows) != c.NumNodes() {
		t.Fatalf("projection_storage rows = %d, want one per node (%d)", len(res.Rows), c.NumNodes())
	}
	var total int64
	for _, r := range res.Rows {
		total += r[0].I
	}
	if total != 200 {
		t.Errorf("visible_rows sums to %d, want 200", total)
	}
}

// TestVMonitorCountersAndEvents: counters mirror span names, and events
// posted to the collector surface through resilience_events.
func TestVMonitorCounters(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE ct (id INTEGER)")
	s.MustExecute("INSERT INTO ct VALUES (1)")

	if got := c.Obs().Counter("span.execute"); got != 2 {
		t.Fatalf("span.execute counter = %d, want 2", got)
	}
	res := s.MustExecute("SELECT counter_value FROM v_monitor.counters WHERE counter_name = 'span.execute'")
	v, err := res.Value()
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2 {
		t.Fatalf("v_monitor.counters span.execute = %d, want 2", v.I)
	}

	c.Obs().Event(obs.Event{Name: "retry", Node: "node0001", Detail: "statement attempt 2"})
	res = s.MustExecute("SELECT event_type, detail FROM v_monitor.resilience_events WHERE event_type = 'retry'")
	if len(res.Rows) != 1 || res.Rows[0][1].S != "statement attempt 2" {
		t.Fatalf("resilience_events = %+v, want the posted retry", res.Rows)
	}
}

// TestExecuteContextObserver: an observer attached to the statement context
// receives the execute span alongside the cluster collector.
func TestExecuteContextObserver(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE ot (id INTEGER)")

	ext := obs.NewCollector()
	ctx := obs.WithPeer(obs.With(context.Background(), ext), "spark-exec-3")
	if _, err := s.ExecuteContext(ctx, "INSERT INTO ot VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	// The cluster-side span records the caller's peer name...
	res := s.MustExecute("SELECT client_name FROM v_monitor.query_requests WHERE request = 'INSERT INTO ot VALUES (1), (2)'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "spark-exec-3" {
		t.Fatalf("query_requests client_name = %+v, want spark-exec-3", res.Rows)
	}

	// ...and a cancelled context refuses to execute at all.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExecuteContext(cctx, "SELECT id FROM ot"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}
}
