package vertica

import (
	"fmt"
	"strings"

	"vsfabric/internal/catalog"
	"vsfabric/internal/expr"
	"vsfabric/internal/obs"
	"vsfabric/internal/types"
	"vsfabric/internal/vexec"
	"vsfabric/internal/vsql"
)

// This file is the cost-based planner stage: multi-way joins are ordered by
// estimated cardinality (smallest build side first), each join's build side
// is the smaller of its two inputs, and single-table scans consult the
// per-container zone maps to count how much of the table a predicate can
// prune. EXPLAIN <select> renders these decisions without executing.

// estUnknown is the cardinality assigned to relations the planner cannot
// size (views, system tables): large, so they are attached last and never
// chosen as a build side over a sized base table.
const estUnknown = int64(1) << 40

// joinStep is one planned join: the clause, which side the hash table is
// built on, and the right relation's cardinality estimate.
type joinStep struct {
	clause    *vsql.JoinClause
	buildLeft bool
	estRight  int64
}

// queryPlan is the planner's output for a join pipeline.
type queryPlan struct {
	baseEst int64
	estOut  int64
	steps   []*joinStep
	order   []string // relation display names in chosen attach order
}

// orderString renders the chosen join order ("orders JOIN customers").
func (p *queryPlan) orderString() string { return strings.Join(p.order, " JOIN ") }

// relationEst estimates a relation's cardinality from catalog statistics:
// the physical row count across its primary stores (one store for replicated
// unsegmented tables). Views and system tables are unsized.
func (s *Session) relationEst(tr *vsql.TableRef) int64 {
	name := strings.ToLower(tr.Name)
	if strings.HasPrefix(name, "v_catalog.") || strings.HasPrefix(name, "v_monitor.") {
		return estUnknown
	}
	if _, ok := s.cluster.cat.View(tr.Name); ok {
		return estUnknown
	}
	tbl, ok := s.cluster.cat.Table(tr.Name)
	if !ok {
		return estUnknown
	}
	if !tbl.Def.Segmented {
		return int64(tbl.Stores[0].TotalRows())
	}
	var n int64
	for _, st := range tbl.Stores {
		n += int64(st.TotalRows())
	}
	return n
}

// displayName is the alias if present, else the table name.
func displayName(tr *vsql.TableRef) string {
	if tr.Alias != "" {
		return tr.Alias
	}
	return tr.Name
}

// qualifierOf returns the lowercased qualifier of a possibly dotted column
// reference ("o.cid" → "o"), or "" when unqualified.
func qualifierOf(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return strings.ToLower(name[:i])
	}
	return ""
}

// clauseConnects reports whether a join clause's ON condition can reference
// the already-attached relations: one of its columns is qualified by an
// attached alias/name, or either column is unqualified (those resolve against
// the accumulated schema at execution time).
func clauseConnects(jc *vsql.JoinClause, attached map[string]bool) bool {
	lq, rq := qualifierOf(jc.LeftCol), qualifierOf(jc.RightCol)
	if lq == "" || rq == "" {
		return true
	}
	return attached[lq] || attached[rq]
}

// planJoins orders the query's joins by estimated cardinality: starting from
// the FROM relation, it repeatedly attaches the connectable clause whose
// right relation is smallest (ties and unconnectable leftovers fall back to
// syntactic order), and builds each join's hash table on the smaller input.
// The plan drives both the vectorized and the row-at-a-time execution paths,
// so the ablation knob changes only the execution strategy, never the plan.
func (s *Session) planJoins(st *vsql.Select) *queryPlan {
	p := &queryPlan{baseEst: s.relationEst(st.From)}
	p.order = []string{displayName(st.From)}
	attached := make(map[string]bool, 1+len(st.Joins))
	attach := func(tr *vsql.TableRef) {
		attached[strings.ToLower(tr.Name)] = true
		if tr.Alias != "" {
			attached[strings.ToLower(tr.Alias)] = true
		}
	}
	attach(st.From)
	remaining := append([]*vsql.JoinClause(nil), st.Joins...)
	estLeft := p.baseEst
	for len(remaining) > 0 {
		best := -1
		var bestEst int64
		for i, jc := range remaining {
			if !clauseConnects(jc, attached) {
				continue
			}
			est := s.relationEst(&jc.Right)
			if best < 0 || est < bestEst {
				best, bestEst = i, est
			}
		}
		if best < 0 {
			// Nothing connects (a cross-reference the executor will reject, or
			// aliases the planner cannot see through): keep syntactic order.
			best, bestEst = 0, s.relationEst(&remaining[0].Right)
		}
		jc := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		p.steps = append(p.steps, &joinStep{clause: jc, estRight: bestEst, buildLeft: estLeft < bestEst})
		attach(&jc.Right)
		p.order = append(p.order, displayName(&jc.Right))
		// FK-style equi-joins keep roughly the larger side's cardinality.
		if bestEst > estLeft {
			estLeft = bestEst
		}
	}
	p.estOut = estLeft
	return p
}

// scanPlanInfo is what EXPLAIN reports about one base-table scan.
type scanPlanInfo struct {
	containers int64
	pruned     int64
	segments   int
	kernels    int
	zoneChecks bool
}

// explainScan sizes a base-table scan at plan time: how many ROS containers
// the serving replicas hold, and how many of them the predicate's zone-map
// checks exclude outright. Mirrors scanTable's replica selection so the
// counts match what execution would do.
func (s *Session) explainScan(tbl *catalog.Table, where expr.Expr) (scanPlanInfo, error) {
	info := scanPlanInfo{}
	hr, residual := extractHashRange(where, tbl)
	pred := vexec.Compile(residual, tbl.Def.Schema, tbl.SegIdx)
	info.kernels = pred.NumKernels()
	info.zoneChecks = pred.HasZoneChecks()
	jobs, err := s.buildSegJobs(tbl, hr)
	if err != nil {
		return info, err
	}
	info.segments = len(jobs)
	checkZones := info.zoneChecks && !s.cluster.cfg.NoZoneMapPruning
	for _, job := range jobs {
		for _, c := range job.store.Containers() {
			info.containers++
			if checkZones && len(c.Stats()) == len(c.Cols) && pred.CanPrune(c.Stats(), c.RowCount) {
				info.pruned++
			}
		}
	}
	return info, nil
}

// explainSchema is the EXPLAIN statement's result-set contract: one row per
// plan step in execution order.
var explainSchema = types.Schema{Cols: []types.Column{
	{Name: "step", T: types.Int64},
	{Name: "operator", T: types.Varchar},
	{Name: "target", T: types.Varchar},
	{Name: "est_rows", T: types.Int64},
	{Name: "containers", T: types.Int64},
	{Name: "pruned", T: types.Int64},
	{Name: "detail", T: types.Varchar},
}}

// executeExplain plans EXPLAIN <select> without executing it: the result set
// describes the chosen join order, build sides, pushdowns, and per-scan
// container pruning from zone maps.
func (s *Session) executeExplain(ex *vsql.Explain) (*Result, error) {
	st := ex.Select
	vis := s.vis().v
	if st.AtEpoch != nil && !st.AtEpoch.Latest {
		if st.AtEpoch.N > s.cluster.txm.LastEpoch() {
			return nil, fmt.Errorf("vertica: epoch %d has not closed yet (last epoch %d)", st.AtEpoch.N, s.cluster.txm.LastEpoch())
		}
		vis.Epoch = st.AtEpoch.N
	}
	if err := s.bindSelectFuncs(st); err != nil {
		return nil, err
	}
	var rows []types.Row
	step := int64(0)
	add := func(op, target string, est, containers, pruned int64, detail string) {
		step++
		rows = append(rows, types.Row{
			types.IntValue(step), types.StringValue(op), types.StringValue(target),
			types.IntValue(est), types.IntValue(containers), types.IntValue(pruned),
			types.StringValue(detail),
		})
	}
	result := func() (*Result, error) {
		return &Result{Schema: explainSchema, Rows: rows, Epoch: vis.Epoch}, nil
	}

	if st.From == nil {
		add("project", "", 1, 0, 0, "FROM-less SELECT")
		return result()
	}

	grouped := hasAggregates(st) || len(st.GroupBy) > 0
	// zoneSkip remembers that some scan had prunable zone checks it will not
	// be allowed to use, so the plan can predict a ZONEMAP_PRUNE_SKIPPED event.
	zoneSkip := false
	scanDetail := func(base scanPlanInfo, pushed string) string {
		d := fmt.Sprintf("%d segments, %d kernels", base.segments, base.kernels)
		if base.zoneChecks {
			if s.cluster.cfg.NoZoneMapPruning {
				zoneSkip = true
				d += ", zone-map pruning disabled"
			} else {
				d += fmt.Sprintf(", zone maps prune %d/%d containers", base.pruned, base.containers)
			}
		}
		if pushed != "" {
			d += ", " + pushed
		}
		return d
	}
	addScan := func(tr *vsql.TableRef, where expr.Expr, pushed string) error {
		est := s.relationEst(tr)
		name := strings.ToLower(tr.Name)
		if strings.HasPrefix(name, "v_catalog.") || strings.HasPrefix(name, "v_monitor.") {
			add("scan", displayName(tr), est, 0, 0, "system table (row source)")
			return nil
		}
		if _, ok := s.cluster.cat.View(tr.Name); ok {
			add("scan", displayName(tr), est, 0, 0, "view expansion (row source)")
			return nil
		}
		tbl, ok := s.cluster.cat.Table(tr.Name)
		if !ok {
			return fmt.Errorf("vertica: relation %q does not exist", tr.Name)
		}
		info, err := s.explainScan(tbl, where)
		if err != nil {
			return err
		}
		add("scan", displayName(tr), est, info.containers, info.pruned, scanDetail(info, pushed))
		return nil
	}

	if len(st.Joins) == 0 {
		pushed := ""
		if countPushdownEligible(s, st) {
			pushed = "count pushdown"
		}
		if err := addScan(st.From, st.Where, pushed); err != nil {
			return nil, err
		}
		if pushed != "" {
			return result()
		}
	} else {
		plan := s.planJoins(st)
		// Join inputs scan without the WHERE clause (it may reference both
		// sides and applies after the joins), so no zone-map pruning there.
		if err := addScan(st.From, nil, ""); err != nil {
			return nil, err
		}
		estLeft := plan.baseEst
		for _, js := range plan.steps {
			if err := addScan(&js.clause.Right, nil, ""); err != nil {
				return nil, err
			}
			build := "right"
			if js.buildLeft {
				build = "left"
			}
			if js.estRight > estLeft {
				estLeft = js.estRight
			}
			add("join", displayName(&js.clause.Right), estLeft, 0, 0,
				fmt.Sprintf("hash join %s = %s, build %s side", js.clause.LeftCol, js.clause.RightCol, build))
		}
		if st.Where != nil {
			add("filter", "", estLeft, 0, 0, "post-join residual")
		}
	}
	if grouped {
		detail := "vectorized hash aggregation"
		if s.cluster.cfg.RowAtATimeScans || len(st.Joins) > 0 || !vectorAggEligible(s, st) {
			detail = "row-at-a-time aggregation"
		}
		add("group-by", "", int64(len(st.GroupBy)), 0, 0, detail)
	}
	if len(st.OrderBy) > 0 {
		add("sort", "", 0, 0, 0, fmt.Sprintf("order by %d keys", len(st.OrderBy)))
	}
	if st.Limit >= 0 {
		add("limit", "", st.Limit, 0, 0, fmt.Sprintf("LIMIT %d", st.Limit))
	}
	// Predicted query events: conditions the plan can already prove will
	// raise a typed event at execution time (see internal/vertica/events.go).
	if grouped && (s.cluster.cfg.RowAtATimeScans || len(st.Joins) > 0 || !vectorAggEligible(s, st)) {
		add("event", string(obs.EvGroupByFallback), 0, 0, 0,
			"aggregation will run on the row-at-a-time path")
	}
	if zoneSkip {
		add("event", string(obs.EvZoneMapPruneSkipped), 0, 0, 0,
			"prunable predicate, but zone-map pruning is disabled by configuration")
	}
	return result()
}
