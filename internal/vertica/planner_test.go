package vertica

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vsfabric/internal/types"
)

// prunableTable creates table pz whose ROS containers have disjoint id
// ranges, so an id predicate can prune whole containers via zone maps.
func prunableTable(t *testing.T, s *Session, c *Cluster) {
	t.Helper()
	s.MustExecute("CREATE TABLE pz (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)")
	for lo := 0; lo < 300; lo += 100 {
		var vals []string
		for i := lo; i < lo+100; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d.5)", i, i))
		}
		s.MustExecute("INSERT INTO pz VALUES " + strings.Join(vals, ", "))
		if err := c.Moveout(); err != nil {
			t.Fatal(err)
		}
	}
}

func sameResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d\n got %v\nwant %v", label, len(got.Rows), len(want.Rows), got.Rows, want.Rows)
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.Null != w.Null || (!g.Null && types.Compare(g, w) != 0) {
				t.Fatalf("%s row %d col %d: %v vs %v", label, i, j, got.Rows[i], want.Rows[i])
			}
		}
	}
}

func TestExplainScanPruning(t *testing.T) {
	c := testCluster(t, 3)
	s := sess(t, c, 0)
	prunableTable(t, s, c)

	res := s.MustExecute("EXPLAIN SELECT val FROM pz WHERE id >= 200")
	wantCols := []string{"step", "operator", "target", "est_rows", "containers", "pruned", "detail"}
	for i, w := range wantCols {
		if res.Schema.Cols[i].Name != w {
			t.Fatalf("explain col %d = %q, want %q", i, res.Schema.Cols[i].Name, w)
		}
	}
	if len(res.Rows) != 1 {
		t.Fatalf("explain rows: %v", res.Rows)
	}
	scan := res.Rows[0]
	if scan[1].S != "scan" || scan[2].S != "pz" {
		t.Fatalf("scan row: %v", scan)
	}
	if scan[4].I == 0 {
		t.Fatal("explain reports zero containers on a moved-out table")
	}
	// Containers holding ids 0..99 and 100..199 are provably excluded.
	if scan[5].I == 0 {
		t.Fatalf("explain pruned no containers: %v", scan)
	}
	if scan[5].I >= scan[4].I {
		t.Fatalf("pruned %d of %d containers; the 200..299 containers must survive", scan[5].I, scan[4].I)
	}
	if !strings.Contains(scan[6].S, "zone maps prune") {
		t.Fatalf("scan detail %q missing zone-map note", scan[6].S)
	}

	// EXPLAIN does not execute: no query_plans record for the SELECT itself.
	res = s.MustExecute("EXPLAIN SELECT COUNT(*) FROM pz")
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][6].S, "count pushdown") {
		t.Fatalf("COUNT(*) explain: %v", res.Rows)
	}

	res = s.MustExecute("EXPLAIN SELECT id FROM pz WHERE id > 5 GROUP BY id ORDER BY id LIMIT 3")
	var ops []string
	for _, r := range res.Rows {
		ops = append(ops, r[1].S)
	}
	if got := strings.Join(ops, ","); got != "scan,group-by,sort,limit" {
		t.Fatalf("operators = %s", got)
	}
}

func TestExplainJoinOrder(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	sizes := map[string]int{"big": 400, "mid": 60, "small": 8}
	for name, n := range sizes {
		s.MustExecute(fmt.Sprintf("CREATE TABLE %s (id INTEGER, tag VARCHAR) SEGMENTED BY HASH(id)", name))
		var vals []string
		for i := 0; i < n; i++ {
			vals = append(vals, fmt.Sprintf("(%d, '%s%d')", i, name, i))
		}
		s.MustExecute(fmt.Sprintf("INSERT INTO %s VALUES %s", name, strings.Join(vals, ", ")))
	}
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}

	// Written mid-first; the planner must reorder to join small before mid.
	q := "SELECT big.tag FROM big JOIN mid ON big.id = mid.id JOIN small ON big.id = small.id"
	res := s.MustExecute("EXPLAIN " + q)
	var joins []string
	for _, r := range res.Rows {
		if r[1].S == "join" {
			joins = append(joins, r[2].S)
		}
	}
	if len(joins) != 2 || joins[0] != "small" || joins[1] != "mid" {
		t.Fatalf("join order = %v, want [small mid]", joins)
	}
	for _, r := range res.Rows {
		if r[1].S == "join" && !strings.Contains(r[6].S, "build right side") {
			t.Fatalf("join against a smaller right side should build right: %v", r)
		}
	}

	// The executed plan must agree with EXPLAIN's order.
	s.MustExecute(q)
	plans := s.MustExecute("SELECT * FROM v_monitor.query_plans")
	last := plans.Rows[len(plans.Rows)-1]
	order := last[3].S
	if order != "big JOIN small JOIN mid" {
		t.Fatalf("executed join order = %q", order)
	}
}

func TestQueryPlansMonitor(t *testing.T) {
	c := testCluster(t, 3)
	s := sess(t, c, 0)
	prunableTable(t, s, c)

	q := "SELECT val FROM pz WHERE id >= 200"
	got := s.MustExecute(q)
	plans := s.MustExecute("SELECT * FROM v_monitor.query_plans")
	wantCols := []string{"plan_id", "query", "anchor_table", "join_order", "estimated_rows",
		"actual_rows", "containers_scanned", "containers_pruned", "pushdown", "vectorized", "epoch"}
	for i, w := range wantCols {
		if plans.Schema.Cols[i].Name != w {
			t.Fatalf("query_plans col %d = %q, want %q", i, plans.Schema.Cols[i].Name, w)
		}
	}
	var rec types.Row
	for _, r := range plans.Rows {
		if r[1].S == q {
			rec = r
		}
	}
	if rec == nil {
		t.Fatalf("no query_plans record for %q: %v", q, plans.Rows)
	}
	if rec[2].S != "pz" {
		t.Fatalf("anchor_table = %q", rec[2].S)
	}
	if rec[5].I != int64(len(got.Rows)) {
		t.Fatalf("actual_rows = %d, want %d", rec[5].I, len(got.Rows))
	}
	if rec[7].I == 0 {
		t.Fatal("containers_pruned = 0; zone maps should have pruned the low containers")
	}
	if rec[6].I == 0 {
		t.Fatal("containers_scanned = 0")
	}
	if !rec[9].B {
		t.Fatal("vectorized = false on the vectorized path")
	}

	// COUNT(*) pushdown and GROUP BY pushdown are labeled.
	s.MustExecute("SELECT COUNT(*) FROM pz")
	s.MustExecute("SELECT id, COUNT(*) FROM pz GROUP BY id LIMIT 1")
	plans = s.MustExecute("SELECT * FROM v_monitor.query_plans")
	var sawCount, sawGroupBy bool
	for _, r := range plans.Rows {
		switch r[8].S {
		case "count":
			sawCount = true
		case "group-by":
			sawGroupBy = true
		}
	}
	if !sawCount || !sawGroupBy {
		t.Fatalf("pushdown labels missing: count=%v group-by=%v", sawCount, sawGroupBy)
	}
}

// TestZoneMapPruningAblation is the acceptance check: results are identical
// with pruning on and off; only container decode counts change.
func TestZoneMapPruningAblation(t *testing.T) {
	run := func(noPrune bool) (*Cluster, *Session) {
		c, err := NewCluster(Config{Nodes: 3, NoZoneMapPruning: noPrune})
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		prunableTable(t, s, c)
		return c, s
	}
	_, on := run(false)
	_, off := run(true)
	defer on.Close()
	defer off.Close()

	queries := []string{
		"SELECT val FROM pz WHERE id >= 200 ORDER BY val",
		"SELECT COUNT(*) FROM pz WHERE id < 100",
		"SELECT id, SUM(val) FROM pz WHERE id >= 250 GROUP BY id ORDER BY id",
		"SELECT val FROM pz WHERE id = 150",
		"SELECT val FROM pz WHERE id > 1000",
	}
	for _, q := range queries {
		sameResults(t, q, on.MustExecute(q), off.MustExecute(q))
	}

	check := func(s *Session, wantPruned bool) {
		t.Helper()
		plans := s.MustExecute("SELECT containers_pruned FROM v_monitor.query_plans")
		var pruned int64
		for _, r := range plans.Rows {
			pruned += r[0].I
		}
		if wantPruned && pruned == 0 {
			t.Error("pruning enabled but containers_pruned = 0 across all plans")
		}
		if !wantPruned && pruned != 0 {
			t.Errorf("pruning disabled but containers_pruned = %d", pruned)
		}
	}
	check(on, true)
	check(off, false)
}

func TestProfileGroupBy(t *testing.T) {
	c := testCluster(t, 3)
	s := sess(t, c, 0)
	prunableTable(t, s, c)

	res := s.MustExecute("PROFILE SELECT id, COUNT(*), SUM(val) FROM pz GROUP BY id")
	var grp types.Row
	for _, r := range res.Rows {
		if r[0].S == "group-by" {
			grp = r
		}
	}
	if grp == nil {
		t.Fatalf("no group-by operator row: %v", res.Rows)
	}
	if !strings.Contains(grp[6].S, "vectorized hash aggregation") {
		t.Fatalf("group-by detail = %q", grp[6].S)
	}
	if grp[1].I != 300 || grp[2].I != 300 {
		t.Fatalf("group-by rows_in=%d rows_out=%d, want 300/300", grp[1].I, grp[2].I)
	}
	if grp[3].I != 300 || grp[4].I != 0 {
		t.Fatalf("group-by vectorized_rows=%d residual_rows=%d", grp[3].I, grp[4].I)
	}

	// An aggregate the kernels can't run (expression argument) falls back and
	// says so.
	res = s.MustExecute("PROFILE SELECT id, SUM(val + 1.0) FROM pz GROUP BY id")
	grp = nil
	for _, r := range res.Rows {
		if r[0].S == "group-by" {
			grp = r
		}
	}
	if grp == nil || !strings.Contains(grp[6].S, "row-at-a-time fallback") {
		t.Fatalf("fallback group-by row = %v", grp)
	}
}

// TestAggEquivalenceProperty is the seeded equivalence suite: the vectorized
// aggregation and join paths must return exactly what the row-at-a-time
// reference returns — NULL group keys, empty groups, mixed INT/FLOAT
// aggregates, duplicate join keys.
func TestAggEquivalenceProperty(t *testing.T) {
	queries := []string{
		// NULL group keys and mixed INT/FLOAT aggregates.
		"SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val) FROM t GROUP BY grp ORDER BY grp",
		"SELECT grp, SUM(id), MIN(id), MAX(id), AVG(id) FROM t GROUP BY grp ORDER BY grp",
		// Multi-column (generic) group keys.
		"SELECT grp, name, COUNT(*) FROM t GROUP BY grp, name ORDER BY grp, name",
		// Aggregates of a nullable column: COUNT(col) skips NULLs.
		"SELECT grp, COUNT(val) FROM t GROUP BY grp ORDER BY grp",
		// Empty input: zero groups with GROUP BY, one NULL-ish row without.
		"SELECT grp, COUNT(*) FROM t WHERE id < 0 GROUP BY grp",
		"SELECT COUNT(*), SUM(val), MIN(name) FROM t WHERE id < 0",
		// Global aggregates over everything.
		"SELECT COUNT(*), COUNT(grp), SUM(id), AVG(val) FROM t",
		// Predicate + aggregation (exercises pruning + filtering upstream).
		"SELECT grp, SUM(val) FROM t WHERE id >= 300 GROUP BY grp ORDER BY grp",
		"SELECT name, MIN(val), MAX(val) FROM t WHERE grp IS NOT NULL GROUP BY name ORDER BY name",
		"SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp LIMIT 3",
	}
	run := func(rowAtATime bool) []*Result {
		c, err := NewCluster(Config{Nodes: 3, RowAtATimeScans: rowAtATime})
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		buildRandomTable(t, s, c, rand.New(rand.NewSource(7)), 600)
		out := make([]*Result, len(queries))
		for i, q := range queries {
			out[i] = s.MustExecute(q)
		}
		return out
	}
	vec, ref := run(false), run(true)
	for i := range queries {
		sameResults(t, queries[i], vec[i], ref[i])
	}
}

// TestJoinEquivalenceProperty diffs the vectorized multi-way join against the
// row-at-a-time reference, duplicate and NULL keys included.
func TestJoinEquivalenceProperty(t *testing.T) {
	queries := []string{
		"SELECT o.id, c.name FROM o JOIN c ON o.cid = c.cid ORDER BY o.id, c.name",
		// Duplicate keys on both sides: full cross-product per key.
		"SELECT o.id, x.tag FROM o JOIN x ON o.cid = x.cid ORDER BY o.id, x.tag",
		// Three-way join with a post-join residual WHERE.
		"SELECT o.id, c.name, x.tag FROM o JOIN c ON o.cid = c.cid JOIN x ON o.cid = x.cid WHERE o.id < 150 ORDER BY o.id, x.tag",
		// Join feeding aggregation.
		"SELECT c.name, COUNT(*) FROM o JOIN c ON o.cid = c.cid GROUP BY c.name ORDER BY c.name",
	}
	run := func(rowAtATime bool) []*Result {
		c, err := NewCluster(Config{Nodes: 3, RowAtATimeScans: rowAtATime})
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rng := rand.New(rand.NewSource(11))
		s.MustExecute("CREATE TABLE o (id INTEGER, cid INTEGER) SEGMENTED BY HASH(id)")
		s.MustExecute("CREATE TABLE c (cid INTEGER, name VARCHAR) SEGMENTED BY HASH(cid)")
		s.MustExecute("CREATE TABLE x (cid INTEGER, tag VARCHAR) SEGMENTED BY HASH(cid)")
		var ov, cv, xv []string
		for i := 0; i < 300; i++ {
			cid := fmt.Sprintf("%d", rng.Intn(20))
			if rng.Intn(15) == 0 {
				cid = "NULL"
			}
			ov = append(ov, fmt.Sprintf("(%d, %s)", i, cid))
		}
		for i := 0; i < 20; i++ {
			cv = append(cv, fmt.Sprintf("(%d, 'cust%d')", i, i))
		}
		cv = append(cv, "(NULL, 'null-cust')")
		// x holds duplicate cids: several tags per key.
		for i := 0; i < 50; i++ {
			xv = append(xv, fmt.Sprintf("(%d, 'tag%d')", rng.Intn(20), i))
		}
		s.MustExecute("INSERT INTO o VALUES " + strings.Join(ov, ", "))
		s.MustExecute("INSERT INTO c VALUES " + strings.Join(cv, ", "))
		s.MustExecute("INSERT INTO x VALUES " + strings.Join(xv, ", "))
		if err := c.Moveout(); err != nil {
			t.Fatal(err)
		}
		out := make([]*Result, len(queries))
		for i, q := range queries {
			out[i] = s.MustExecute(q)
		}
		return out
	}
	vec, ref := run(false), run(true)
	for i := range queries {
		if len(vec[i].Rows) == 0 {
			t.Fatalf("%s: empty result, data generator broken", queries[i])
		}
		sameResults(t, queries[i], vec[i], ref[i])
	}
}
