package vertica

import "sync"

// planRecord is one completed SELECT's planning outcome, surfaced through
// v_monitor.query_plans: what the cost-based planner chose (join order, build
// sides, pushdowns) and how its estimates compared to reality.
type planRecord struct {
	ID    uint64
	Query string
	// Table is the anchor relation: the base table scanned, or the FROM
	// relation of a join pipeline.
	Table string
	// JoinOrder lists the relations in the order the planner attached them
	// ("orders JOIN customers JOIN regions"); empty for single-table queries.
	JoinOrder string
	// EstRows is the planner's input-cardinality estimate; ActualRows the
	// result-set size actually produced.
	EstRows    int64
	ActualRows int64
	// ContainersScanned / ContainersPruned count ROS containers decoded vs
	// skipped outright because their zone maps excluded the predicate range.
	ContainersScanned int64
	ContainersPruned  int64
	// Pushdown names the scan-level short-circuit taken ("count", "group-by",
	// or "" for a plain scan); Vectorized reports whether the batch pipeline
	// ran (false under the RowAtATimeScans ablation).
	Pushdown   string
	Vectorized bool
	Epoch      uint64
}

// planTracker keeps a bounded in-memory ring of query plans.
type planTracker struct {
	mu   sync.Mutex
	next uint64
	recs []planRecord
}

// planHistory bounds the tracker: the oldest plans age out first.
const planHistory = 512

// record files r (assigning its ID) and returns the stored record, so the
// caller can spool it to the durable data collector.
func (t *planTracker) record(r planRecord) planRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	r.ID = t.next
	t.recs = append(t.recs, r)
	if len(t.recs) > planHistory {
		t.recs = append(t.recs[:0:0], t.recs[len(t.recs)-planHistory:]...)
	}
	return r
}

func (t *planTracker) snapshot() []planRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]planRecord(nil), t.recs...)
}

// recordPlan files a completed SELECT's planning outcome. Queries that never
// planned a base-table scan (system tables, FROM-less selects) leave no
// record; the monitoring tables must not observe themselves.
func (s *Session) recordPlan(stats *scanStats, rowsOut int, epoch uint64) {
	if stats.table == "" {
		return
	}
	est := stats.estRows
	if est == 0 {
		// Plain scans estimate input cardinality as the physical rows visited.
		for _, n := range stats.scanRows {
			est += int64(n)
		}
	}
	rec := s.cluster.plans.record(planRecord{
		Query:             s.curSQL,
		Table:             stats.table,
		JoinOrder:         stats.joinOrder,
		EstRows:           est,
		ActualRows:        int64(rowsOut),
		ContainersScanned: stats.contScanned,
		ContainersPruned:  stats.contPruned,
		Pushdown:          stats.pushdown,
		Vectorized:        stats.vectorized,
		Epoch:             epoch,
	})
	s.cluster.dcAppendPlan(rec)
}
