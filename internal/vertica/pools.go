package vertica

import (
	"context"
	"fmt"
	"strings"
	"time"

	"vsfabric/internal/obs"
	"vsfabric/internal/pool"
	"vsfabric/internal/types"
	"vsfabric/internal/vsql"
)

// This file is the engine half of the resource manager: CREATE/ALTER/DROP
// RESOURCE POOL DDL, SET SESSION RESOURCE_POOL, per-statement admission in
// the execute and COPY paths, and the v_monitor.resource_pools /
// resource_queue_events system tables.

// Per-statement memory estimates. A real optimizer would cost the plan; a
// fixed per-kind estimate is enough to make MEMORYSIZE budgets meaningful
// (bulk loads reserve more than point queries).
const (
	selectMemEstimate = 1 << 20   // SELECT / PROFILE
	copyMemEstimate   = 4 << 20   // COPY bulk load
	dmlMemEstimate    = 256 << 10 // INSERT / UPDATE / DELETE
)

// poolDefaults are applied to CREATE RESOURCE POOL clauses left unset:
// queue up to 64 statements for up to 5 minutes, no memory or concurrency
// cap. (Vertica's general pool defaults similarly: queuetimeout 300s.)
func poolDefaults() pool.Config {
	return pool.Config{MaxQueueDepth: 64, QueueTimeout: 5 * time.Minute}
}

// applyPoolParams overlays the clauses present in st onto cfg.
func applyPoolParams(cfg pool.Config, p vsql.PoolParams) pool.Config {
	if p.MemoryBytes != nil {
		cfg.MemoryBytes = *p.MemoryBytes
	}
	if p.MaxConcurrency != nil {
		cfg.MaxConcurrency = *p.MaxConcurrency
	}
	if p.MaxQueueDepth != nil {
		cfg.MaxQueueDepth = *p.MaxQueueDepth
	}
	if p.QueueTimeout != nil {
		cfg.QueueTimeout = *p.QueueTimeout
	}
	return cfg
}

func (s *Session) executeCreatePool(st *vsql.CreateResourcePool) (*Result, error) {
	cfg := applyPoolParams(poolDefaults(), st.Params)
	if _, err := s.cluster.pools.Create(st.Name, cfg); err != nil {
		if st.IfNotExists && err == pool.ErrExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("vertica: %w: %s", err, st.Name)
	}
	if err := s.cluster.logDDL(opCreatePool, ddlPayload{Name: st.Name, Pool: &cfg}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (s *Session) executeAlterPool(st *vsql.AlterResourcePool) (*Result, error) {
	p, err := s.cluster.pools.Get(st.Name)
	if err != nil {
		return nil, fmt.Errorf("vertica: %w: %s", err, st.Name)
	}
	cfg := applyPoolParams(p.Snapshot().Cfg, st.Params)
	if err := s.cluster.pools.Alter(st.Name, cfg); err != nil {
		return nil, fmt.Errorf("vertica: %w: %s", err, st.Name)
	}
	// Log the resulting full config, not the delta: replay is a plain upsert.
	if err := s.cluster.logDDL(opAlterPool, ddlPayload{Name: st.Name, Pool: &cfg}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (s *Session) executeDropPool(st *vsql.DropResourcePool) (*Result, error) {
	if err := s.cluster.pools.Drop(st.Name); err != nil {
		if st.IfExists && err == pool.ErrNotFound {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("vertica: %w: %s", err, st.Name)
	}
	if err := s.cluster.logDDL(opDropPool, ddlPayload{Name: st.Name}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// executeSet handles SET [SESSION] <param> = <value>: RESOURCE_POOL routes
// admission, SLOW_QUERY_THRESHOLD overrides the cluster's SLOW_QUERY event
// threshold for this session ('0' disables it).
func (s *Session) executeSet(st *vsql.Set) (*Result, error) {
	switch strings.ToUpper(st.Name) {
	case "RESOURCE_POOL":
		if _, err := s.cluster.pools.Get(st.Value); err != nil {
			return nil, fmt.Errorf("vertica: %w: %s", err, st.Value)
		}
		s.poolName = st.Value
		return &Result{}, nil
	case "SLOW_QUERY_THRESHOLD":
		d, err := time.ParseDuration(st.Value)
		if err != nil {
			if st.Value == "0" {
				d = 0
			} else {
				return nil, fmt.Errorf("vertica: bad SLOW_QUERY_THRESHOLD %q: %v", st.Value, err)
			}
		}
		s.slowQuery, s.slowQuerySet = d, true
		return &Result{}, nil
	default:
		return nil, fmt.Errorf("vertica: unknown session parameter %q", st.Name)
	}
}

// admitStmt runs admission control for one statement and returns the release
// func (nil for exempt statements). Exempt: monitoring reads (they must work
// on a saturated cluster — that is their point), EXPLAIN (plans, never
// executes), DDL, transaction control, and SET.
func (s *Session) admitStmt(ctx context.Context, stmt vsql.Statement) (func(), error) {
	var kind string
	var mem int64
	switch stmt.(type) {
	case *vsql.Select, *vsql.Profile:
		if systemRead(stmt) {
			return nil, nil
		}
		kind, mem = "select", selectMemEstimate
	case *vsql.Insert, *vsql.Update, *vsql.Delete:
		kind, mem = "dml", dmlMemEstimate
	case *vsql.Copy:
		kind, mem = "copy", copyMemEstimate
	default:
		return nil, nil
	}
	return s.admit(ctx, kind, mem)
}

// admit asks the session's pool for a slot, falling back to the general pool
// if the SET target was dropped since. A queued admission is surfaced as a
// synthetic "pool.queue" span (feeding the latency histograms and the trace
// tree) plus pool.* counters; refusals map to the typed pool sentinels that
// cross the wire as retryable conditions.
func (s *Session) admit(ctx context.Context, kind string, mem int64) (func(), error) {
	p, err := s.cluster.pools.Get(s.poolName)
	if err != nil {
		p = s.cluster.pools.General()
	}
	start := time.Now()
	release, res, err := p.Admit(ctx, mem, kind)
	if err != nil {
		switch {
		case err == pool.ErrQueueTimeout:
			s.cluster.mon.Add("pool.timeouts", 1)
		case err == pool.ErrRejected:
			s.cluster.mon.Add("pool.rejections", 1)
		}
		return nil, fmt.Errorf("vertica: pool %s: %w", p.Name(), err)
	}
	s.cluster.mon.Add("pool.admitted", 1)
	if res.Queued {
		s.cluster.mon.Add("pool.queued", 1)
		s.raiseEvent(obs.EvPoolQueueWait, "pool "+p.Name()+" admission queue ("+kind+")",
			res.Waited.Microseconds(), 0)
		sp := obs.Span{
			Name: "pool.queue", Node: s.node.Name, Peer: s.peer,
			Detail: p.Name() + ":" + kind,
			Start:  start, Duration: res.Waited,
			SpanID: obs.NewID(),
		}
		if sc := obs.SpanContextFrom(ctx); sc.TraceID != 0 {
			sp.TraceID, sp.ParentID = sc.TraceID, sc.SpanID
		} else {
			sp.TraceID = sp.SpanID
		}
		s.cluster.mon.SpanEnd(sp)
	}
	return release, nil
}

// resourcePoolRows renders v_monitor.resource_pools.
func resourcePoolRows(m *pool.Manager) ([]types.Row, types.Schema, error) {
	schema := types.NewSchema(
		types.Column{Name: "pool_name", T: types.Varchar},
		types.Column{Name: "memory_size_bytes", T: types.Int64},
		types.Column{Name: "max_concurrency", T: types.Int64},
		types.Column{Name: "max_queue_depth", T: types.Int64},
		types.Column{Name: "queue_timeout_ms", T: types.Int64},
		types.Column{Name: "running_count", T: types.Int64},
		types.Column{Name: "memory_inuse_bytes", T: types.Int64},
		types.Column{Name: "queue_length", T: types.Int64},
		types.Column{Name: "admitted_count", T: types.Int64},
		types.Column{Name: "queued_count", T: types.Int64},
		types.Column{Name: "timeout_count", T: types.Int64},
		types.Column{Name: "rejected_count", T: types.Int64},
	)
	var rows []types.Row
	for _, st := range m.List() {
		rows = append(rows, types.Row{
			types.StringValue(st.Name),
			types.IntValue(st.Cfg.MemoryBytes),
			types.IntValue(int64(st.Cfg.MaxConcurrency)),
			types.IntValue(int64(st.Cfg.MaxQueueDepth)),
			types.IntValue(st.Cfg.QueueTimeout.Milliseconds()),
			types.IntValue(int64(st.Running)),
			types.IntValue(st.MemInUse),
			types.IntValue(int64(st.QueueLen)),
			types.IntValue(int64(st.Admitted)),
			types.IntValue(int64(st.Queued)),
			types.IntValue(int64(st.Timeouts)),
			types.IntValue(int64(st.Rejections)),
		})
	}
	return rows, schema, nil
}

// resourceQueueEventRows renders v_monitor.resource_queue_events.
func resourceQueueEventRows(m *pool.Manager) ([]types.Row, types.Schema, error) {
	schema := types.NewSchema(
		types.Column{Name: "event_time", T: types.Varchar},
		types.Column{Name: "pool_name", T: types.Varchar},
		types.Column{Name: "outcome", T: types.Varchar},
		types.Column{Name: "queue_wait_us", T: types.Int64},
		types.Column{Name: "request_type", T: types.Varchar},
	)
	var rows []types.Row
	for _, ev := range m.Events() {
		rows = append(rows, types.Row{
			types.StringValue(ev.Time.Format(time.RFC3339Nano)),
			types.StringValue(ev.Pool),
			types.StringValue(ev.Outcome),
			types.IntValue(ev.Wait.Microseconds()),
			types.StringValue(ev.Detail),
		})
	}
	return rows, schema, nil
}
