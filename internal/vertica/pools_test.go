package vertica

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vsfabric/internal/pool"
	"vsfabric/internal/types"
)

func TestResourcePoolDDLAndMonitor(t *testing.T) {
	c := MustNewCluster(1)
	s, _ := c.Connect(0)
	defer s.Close()

	s.MustExecute("CREATE RESOURCE POOL etl MEMORYSIZE '64M' MAXCONCURRENCY 4 MAXQUEUEDEPTH 16 QUEUETIMEOUT '2s'")
	if _, err := s.Execute("CREATE RESOURCE POOL etl"); err == nil {
		t.Fatal("duplicate CREATE should fail")
	}
	s.MustExecute("CREATE RESOURCE POOL IF NOT EXISTS etl")
	s.MustExecute("ALTER RESOURCE POOL etl MAXCONCURRENCY 2")

	res := s.MustExecute("SELECT * FROM v_monitor.resource_pools")
	var found bool
	for _, r := range res.Rows {
		if r[0].S == "etl" {
			found = true
			if r[1].I != 64<<20 || r[2].I != 2 || r[3].I != 16 || r[4].I != 2000 {
				t.Fatalf("etl row: %v", r)
			}
		}
	}
	if !found {
		t.Fatal("etl missing from v_monitor.resource_pools")
	}

	s.MustExecute("DROP RESOURCE POOL etl")
	if _, err := s.Execute("DROP RESOURCE POOL etl"); err == nil {
		t.Fatal("dropping a dropped pool should fail")
	}
	s.MustExecute("DROP RESOURCE POOL IF EXISTS etl")
	if _, err := s.Execute("DROP RESOURCE POOL general"); err == nil {
		t.Fatal("dropping general should fail")
	}
}

func TestSetResourcePool(t *testing.T) {
	c := MustNewCluster(1)
	s, _ := c.Connect(0)
	defer s.Close()
	if _, err := s.Execute("SET RESOURCE_POOL = ghost"); err == nil {
		t.Fatal("SET to unknown pool should fail")
	}
	if _, err := s.Execute("SET WHATEVER = 1"); err == nil {
		t.Fatal("unknown parameter should fail")
	}
	s.MustExecute("CREATE RESOURCE POOL p MAXCONCURRENCY 1")
	s.MustExecute("SET SESSION RESOURCE_POOL = p")
	if s.poolName != "p" {
		t.Fatalf("poolName = %q", s.poolName)
	}
	// Statements on a dropped pool fall back to general rather than failing.
	s.MustExecute("DROP RESOURCE POOL p")
	s.MustExecute("CREATE TABLE t (a INT)")
	s.MustExecute("INSERT INTO t VALUES (1)")
	if res := s.MustExecute("SELECT * FROM t"); len(res.Rows) != 1 {
		t.Fatal("query after pool drop failed")
	}
}

// TestAdmissionBoundsConcurrency runs many concurrent SELECT sessions
// through a MAXCONCURRENCY 2 pool and asserts the engine never runs more
// than 2 at once, queue waits surface in resource_queue_events and the
// pool.queue histogram, and every statement still succeeds.
func TestAdmissionBoundsConcurrency(t *testing.T) {
	c := MustNewCluster(1)
	setup, _ := c.Connect(0)
	setup.MustExecute("CREATE TABLE t (a INT)")
	setup.MustExecute("INSERT INTO t VALUES (1)")
	setup.MustExecute("CREATE RESOURCE POOL tiny MAXCONCURRENCY 2 MAXQUEUEDEPTH NONE QUEUETIMEOUT '30s'")
	setup.Close()

	// Gate makes each admitted statement hold its slot until observed, via a
	// UDx that blocks: concurrency peaks are deterministic, not timing-luck.
	var cur, peak atomic.Int64
	c.RegisterUDx("SLOWID", func(args []types.Value, _ map[string]string) (types.Value, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return args[0], nil
	})

	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.Connect(0)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			if _, err := s.Execute("SET RESOURCE_POOL = tiny"); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 5; j++ {
				if _, err := s.Execute("SELECT SLOWID(a) FROM t"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("observed %d concurrent statements, pool limit 2", p)
	}

	mon, _ := c.Connect(0)
	defer mon.Close()
	res := mon.MustExecute("SELECT * FROM v_monitor.resource_queue_events")
	queued := 0
	for _, r := range res.Rows {
		if r[1].S == "tiny" && r[2].S == "queued" {
			queued++
		}
	}
	if queued == 0 {
		t.Fatal("no queued events recorded despite contention")
	}
	if h, ok := c.Obs().Histogram("pool.queue"); !ok || h.P99 <= 0 {
		t.Fatalf("pool.queue histogram missing or empty: %+v ok=%v", h, ok)
	}
	st := poolStats(t, c, "tiny")
	if st.Queued == 0 || st.Admitted < workers*5 {
		t.Fatalf("pool stats: %+v", st)
	}
}

func TestAdmissionQueueTimeoutSurfaces(t *testing.T) {
	c := MustNewCluster(1)
	s, _ := c.Connect(0)
	defer s.Close()
	s.MustExecute("CREATE TABLE t (a INT)")
	s.MustExecute("INSERT INTO t VALUES (1)")
	s.MustExecute("CREATE RESOURCE POOL p MAXCONCURRENCY 1 MAXQUEUEDEPTH NONE QUEUETIMEOUT '5ms'")

	// Occupy the only slot out-of-band.
	rel, _, err := mustPool(t, c, "p").Admit(context.Background(), 0, "hold")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	s.MustExecute("SET RESOURCE_POOL = p")
	_, err = s.Execute("SELECT * FROM t")
	if !errors.Is(err, pool.ErrQueueTimeout) {
		t.Fatalf("got %v, want ErrQueueTimeout", err)
	}
	// Monitoring reads stay exempt — they must work on a saturated pool.
	if _, err := s.Execute("SELECT * FROM v_monitor.resource_pools"); err != nil {
		t.Fatalf("monitoring read blocked by admission: %v", err)
	}
	if st := poolStats(t, c, "p"); st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
}

func TestPoolDDLSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCluster(Config{Nodes: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := c.Connect(0)
	s.MustExecute("CREATE RESOURCE POOL keep MEMORYSIZE '8M' MAXCONCURRENCY 3")
	s.MustExecute("CREATE RESOURCE POOL gone")
	s.MustExecute("ALTER RESOURCE POOL keep MAXQUEUEDEPTH 9")
	s.MustExecute("DROP RESOURCE POOL gone")
	s.Close()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCluster(Config{Nodes: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := poolStats(t, c2, "keep")
	if st.Cfg.MemoryBytes != 8<<20 || st.Cfg.MaxConcurrency != 3 || st.Cfg.MaxQueueDepth != 9 {
		t.Fatalf("replayed config: %+v", st.Cfg)
	}
	if _, err := c2.Pools().Get("gone"); !errors.Is(err, pool.ErrNotFound) {
		t.Fatalf("dropped pool resurrected: %v", err)
	}

	// Across a checkpoint too: checkpointing truncates the WAL, so the
	// manifest must carry the pool configs.
	s2, _ := c2.Connect(0)
	s2.MustExecute("CREATE TABLE t (a INT)")
	s2.MustExecute("INSERT INTO t VALUES (1)")
	if err := c2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, err := NewCluster(Config{Nodes: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	st = poolStats(t, c3, "keep")
	if st.Cfg.MaxConcurrency != 3 {
		t.Fatalf("pool lost across checkpoint: %+v", st.Cfg)
	}
}

func poolStats(t *testing.T, c *Cluster, name string) pool.Stats {
	t.Helper()
	return mustPool(t, c, name).Snapshot()
}

func mustPool(t *testing.T, c *Cluster, name string) *pool.Pool {
	t.Helper()
	p, err := c.Pools().Get(name)
	if err != nil {
		t.Fatalf("pool %s: %v", name, err)
	}
	return p
}
