package vertica

import (
	"fmt"
	"time"

	"vsfabric/internal/types"
	"vsfabric/internal/vsql"
)

// opStat is one operator line of a PROFILE result: how many rows flowed in
// and out, how the filtering work split between compiled kernels and the
// interpreted residual, and the operator's wall-clock cost.
type opStat struct {
	name    string
	rowsIn  int64
	rowsOut int64
	vecRows int64 // rows the typed kernels examined (vectorized work)
	resRows int64 // rows the interpreted residual examined
	dur     time.Duration
	detail  string
}

// queryProfile accumulates operator stats while a profiled SELECT runs.
// Operators append in execution order on the coordinating goroutine (parallel
// segment scans fold their per-segment counts at the merge, so no locking).
type queryProfile struct {
	ops []opStat
}

func (qp *queryProfile) add(op opStat) {
	if qp != nil {
		qp.ops = append(qp.ops, op)
	}
}

// profileSchema is the PROFILE statement's result-set contract (documented
// in DESIGN.md): one row per operator, execution order, "total" last.
var profileSchema = types.Schema{Cols: []types.Column{
	{Name: "operator", T: types.Varchar},
	{Name: "rows_in", T: types.Int64},
	{Name: "rows_out", T: types.Int64},
	{Name: "vectorized_rows", T: types.Int64},
	{Name: "residual_rows", T: types.Int64},
	{Name: "duration_us", T: types.Int64},
	{Name: "detail", T: types.Varchar},
}}

// executeProfile runs PROFILE <select>: the wrapped query executes normally
// (same snapshot rules, same pushdowns) with per-operator instrumentation
// switched on, and the profile — not the query's rows — comes back as the
// result set.
func (s *Session) executeProfile(p *vsql.Profile) (*Result, error) {
	qp := &queryProfile{}
	start := time.Now()
	res, err := s.executeSelectProf(p.Select, qp)
	if err != nil {
		return nil, err
	}
	// Inline query events: everything the statement raised while executing,
	// rendered as pseudo-operators ahead of the "total" row. Value and
	// threshold land in the detail column — their unit varies by event type.
	for _, ev := range s.stmtEvents {
		detail := ev.Detail
		if ev.Threshold != 0 {
			detail = fmt.Sprintf("%s (value %d over threshold %d)", detail, ev.Value, ev.Threshold)
		} else if ev.Value != 0 {
			detail = fmt.Sprintf("%s (value %d)", detail, ev.Value)
		}
		qp.add(opStat{name: "event: " + string(ev.Type), detail: detail})
	}
	qp.add(opStat{
		name:    "total",
		rowsOut: int64(len(res.Rows)),
		dur:     time.Since(start),
		detail:  fmt.Sprintf("epoch %d", res.Epoch),
	})
	rows := make([]types.Row, 0, len(qp.ops))
	for _, op := range qp.ops {
		rows = append(rows, types.Row{
			types.StringValue(op.name),
			types.IntValue(op.rowsIn),
			types.IntValue(op.rowsOut),
			types.IntValue(op.vecRows),
			types.IntValue(op.resRows),
			types.IntValue(op.dur.Microseconds()),
			types.StringValue(op.detail),
		})
	}
	return &Result{Schema: profileSchema, Rows: rows, Epoch: res.Epoch}, nil
}
