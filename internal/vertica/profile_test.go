package vertica

import (
	"fmt"
	"strings"
	"testing"
)

// TestProfileSelect pins the PROFILE result-set contract: one row per
// operator in execution order, "total" last, with row counts that reconcile
// against the query's actual result.
func TestProfileSelect(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE pt (id INTEGER, grp INTEGER, val FLOAT) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 400; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d, %d.5)", i, i%10, i))
	}
	s.MustExecute("INSERT INTO pt VALUES " + strings.Join(vals, ", "))

	const q = "SELECT val FROM pt WHERE grp = 3"
	plain := s.MustExecute(q)
	if len(plain.Rows) != 40 {
		t.Fatalf("plain query returned %d rows, want 40", len(plain.Rows))
	}

	res := s.MustExecute("PROFILE " + q)
	wantCols := []string{"operator", "rows_in", "rows_out", "vectorized_rows", "residual_rows", "duration_us", "detail"}
	if got := len(res.Schema.Cols); got != len(wantCols) {
		t.Fatalf("profile schema has %d cols, want %d", got, len(wantCols))
	}
	for i, w := range wantCols {
		if res.Schema.Cols[i].Name != w {
			t.Errorf("profile col %d = %q, want %q", i, res.Schema.Cols[i].Name, w)
		}
	}
	if len(res.Rows) < 3 {
		t.Fatalf("profile has %d operator rows, want at least scan, project, total", len(res.Rows))
	}

	ops := make(map[string]int) // operator name → row index
	for i, r := range res.Rows {
		ops[r[0].S] = i
	}
	scanIdx, ok := ops["scan pt"]
	if !ok {
		t.Fatalf("profile is missing the scan operator: %+v", res.Rows)
	}
	scan := res.Rows[scanIdx]
	if scan[1].I != 400 {
		t.Errorf("scan rows_in = %d, want 400", scan[1].I)
	}
	if scan[2].I != 40 {
		t.Errorf("scan rows_out = %d, want 40 (predicate pushed to scan)", scan[2].I)
	}
	if scan[3].I == 0 {
		t.Error("scan vectorized_rows = 0, want the typed kernel to have run")
	}

	last := res.Rows[len(res.Rows)-1]
	if last[0].S != "total" {
		t.Fatalf("last profile row = %q, want total", last[0].S)
	}
	if last[2].I != 40 {
		t.Errorf("total rows_out = %d, want 40", last[2].I)
	}
	if !strings.HasPrefix(last[6].S, "epoch ") {
		t.Errorf("total detail = %q, want the query epoch", last[6].S)
	}

	// PROFILE of an aggregate runs the same pushdown machinery.
	res = s.MustExecute("PROFILE SELECT COUNT(*) FROM pt")
	last = res.Rows[len(res.Rows)-1]
	if last[0].S != "total" || last[2].I != 1 {
		t.Fatalf("PROFILE COUNT(*) total row = %+v, want 1 result row", last)
	}

	// The profiled query must not perturb the data or fail under the
	// row-at-a-time reference config either.
	cr, err := NewCluster(Config{Nodes: 2, RowAtATimeScans: true})
	if err != nil {
		t.Fatal(err)
	}
	sr := sess(t, cr, 0)
	sr.MustExecute("CREATE TABLE pt (id INTEGER, val FLOAT)")
	sr.MustExecute("INSERT INTO pt VALUES (1, 1.5), (2, 2.5)")
	res = sr.MustExecute("PROFILE SELECT val FROM pt WHERE id = 1")
	if last := res.Rows[len(res.Rows)-1]; last[0].S != "total" || last[2].I != 1 {
		t.Fatalf("row-at-a-time PROFILE total = %+v, want 1 row out", last)
	}
}
