package vertica

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vsfabric/internal/expr"
	"vsfabric/internal/types"
	"vsfabric/internal/vsql"
)

// project applies the SELECT list — star expansion, scalar expressions,
// aggregates with optional GROUP BY — and the LIMIT clause. qp, when non-nil,
// receives the group-by operator's profile row.
func project(st *vsql.Select, rows []types.Row, schema types.Schema, qp *queryProfile) ([]types.Row, types.Schema, error) {
	var out []types.Row
	var outSchema types.Schema
	var err error
	if hasAggregates(st) || len(st.GroupBy) > 0 {
		aggStart := profClock(qp)
		out, outSchema, err = aggregate(st, rows, schema)
		if qp != nil && err == nil {
			qp.add(opStat{
				name: "group-by", rowsIn: int64(len(rows)), rowsOut: int64(len(out)),
				resRows: int64(len(rows)), dur: time.Since(aggStart),
				detail: "row-at-a-time fallback",
			})
		}
	} else {
		out, outSchema, err = projectScalar(st, rows, schema)
	}
	if err != nil {
		return nil, types.Schema{}, err
	}
	if len(st.OrderBy) > 0 {
		if err := orderRows(out, outSchema, st.OrderBy); err != nil {
			return nil, types.Schema{}, err
		}
	}
	if st.Limit >= 0 && int64(len(out)) > st.Limit {
		out = out[:st.Limit]
	}
	return out, outSchema, nil
}

// orderRows sorts the result set by the ORDER BY keys (NULLs first, per the
// engine's comparison semantics).
func orderRows(rows []types.Row, schema types.Schema, keys []vsql.OrderItem) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		j := schema.ColIndex(k.Col)
		if j < 0 {
			return fmt.Errorf("vertica: ORDER BY column %q not in result", k.Col)
		}
		idx[i] = j
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, k := range keys {
			c := types.Compare(rows[a][idx[i]], rows[b][idx[i]])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// project2 is project for view expansion (the view's own SELECT list shapes
// the rows the outer query sees).
func project2(st *vsql.Select, rows []types.Row, schema types.Schema) ([]types.Row, types.Schema, error) {
	return project(st, rows, schema, nil)
}

func projectScalar(st *vsql.Select, rows []types.Row, schema types.Schema) ([]types.Row, types.Schema, error) {
	// Fast path: SELECT * alone keeps rows as-is.
	if len(st.Items) == 1 && st.Items[0].Star {
		return rows, schema, nil
	}
	outSchema, evals, err := selectShape(st.Items, schema)
	if err != nil {
		return nil, types.Schema{}, err
	}
	out := make([]types.Row, len(rows))
	for i, r := range rows {
		row := make(types.Row, len(evals))
		for j, ev := range evals {
			v, err := ev(r)
			if err != nil {
				return nil, types.Schema{}, err
			}
			row[j] = v
		}
		out[i] = row
	}
	return out, outSchema, nil
}

// selectShape resolves non-aggregate select items to output columns and
// row-evaluator closures.
func selectShape(items []vsql.SelectItem, schema types.Schema) (types.Schema, []func(types.Row) (types.Value, error), error) {
	var outSchema types.Schema
	var evals []func(types.Row) (types.Value, error)
	for _, it := range items {
		if it.Star {
			for ci, c := range schema.Cols {
				ci := ci
				outSchema.Cols = append(outSchema.Cols, c)
				evals = append(evals, func(r types.Row) (types.Value, error) { return r[ci], nil })
			}
			continue
		}
		e := it.Expr
		for _, c := range e.Columns(nil) {
			if schema.ColIndex(c) < 0 {
				return types.Schema{}, nil, fmt.Errorf("vertica: column %q does not exist", c)
			}
		}
		name := it.Alias
		if name == "" {
			name = exprName(e)
		}
		outSchema.Cols = append(outSchema.Cols, types.Column{Name: name, T: inferType(e, schema)})
		sc := schema
		evals = append(evals, func(r types.Row) (types.Value, error) { return e.Eval(r, &sc) })
	}
	return outSchema, evals, nil
}

func exprName(e expr.Expr) string {
	switch n := e.(type) {
	case *expr.Col:
		return n.Name
	case *expr.FuncCall:
		return strings.ToLower(n.Name)
	case *expr.HashFn:
		return "hash"
	case *expr.ModFn:
		return "mod"
	default:
		return "?column?"
	}
}

// inferType best-effort types an expression for result schemas.
func inferType(e expr.Expr, schema types.Schema) types.Type {
	switch n := e.(type) {
	case *expr.Col:
		if i := schema.ColIndex(n.Name); i >= 0 {
			return schema.Cols[i].T
		}
		return types.Unknown
	case *expr.Lit:
		return n.V.T
	case *expr.HashFn, *expr.ModFn:
		return types.Int64
	case *expr.Cmp, *expr.And, *expr.Or, *expr.Not, *expr.IsNull:
		return types.Bool
	case *expr.Arith:
		lt, rt := inferType(n.L, schema), inferType(n.R, schema)
		if lt == types.Int64 && rt == types.Int64 {
			return types.Int64
		}
		return types.Float64
	case *expr.FuncCall:
		return types.Float64 // scoring UDxs return numbers; refined at runtime
	default:
		return types.Unknown
	}
}

// aggState is one aggregate accumulator.
type aggState struct {
	count   int64
	sum     float64
	sumInt  int64
	intSum  bool
	min     types.Value
	max     types.Value
	seenAny bool
}

func (a *aggState) update(fn vsql.AggFn, v types.Value, countStar bool) {
	if fn == vsql.AggCount {
		if countStar || !v.Null {
			a.count++
		}
		return
	}
	if v.Null {
		return
	}
	if !a.seenAny {
		a.min, a.max = v, v
		a.intSum = v.T == types.Int64
		a.seenAny = true
	} else {
		if types.Compare(v, a.min) < 0 {
			a.min = v
		}
		if types.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.count++
	a.sum += v.AsFloat()
	if v.T == types.Int64 {
		a.sumInt += v.I
	} else {
		a.intSum = false
	}
}

func (a *aggState) result(fn vsql.AggFn) types.Value {
	switch fn {
	case vsql.AggCount:
		return types.IntValue(a.count)
	case vsql.AggSum:
		if !a.seenAny {
			return types.NullValue(types.Float64)
		}
		if a.intSum {
			return types.IntValue(a.sumInt)
		}
		return types.FloatValue(a.sum)
	case vsql.AggAvg:
		if a.count == 0 {
			return types.NullValue(types.Float64)
		}
		return types.FloatValue(a.sum / float64(a.count))
	case vsql.AggMin:
		if !a.seenAny {
			return types.NullValue(types.Float64)
		}
		return a.min
	case vsql.AggMax:
		if !a.seenAny {
			return types.NullValue(types.Float64)
		}
		return a.max
	default:
		return types.NullValue(types.Float64)
	}
}

// aggItemPlan is one select item of an aggregation: an aggregate function
// over an argument expression, or (groupCol >= 0) a plain grouping column.
type aggItemPlan struct {
	agg      vsql.AggFn
	arg      expr.Expr
	groupCol int // index into groupIdx for plain columns
}

// buildAggPlan validates an aggregation's select items against the input
// schema and builds the item plans, the GROUP BY column indexes, and the
// output schema. Shared by the row-at-a-time aggregate() and the vectorized
// pushdown (tryVectorizedAgg) so both type results identically.
func buildAggPlan(st *vsql.Select, schema types.Schema) ([]aggItemPlan, []int, types.Schema, error) {
	groupIdx := make([]int, 0, len(st.GroupBy))
	for _, g := range st.GroupBy {
		i := schema.ColIndex(g)
		if i < 0 {
			return nil, nil, types.Schema{}, fmt.Errorf("vertica: GROUP BY column %q not found", g)
		}
		groupIdx = append(groupIdx, i)
	}
	var outSchema types.Schema
	plans := make([]aggItemPlan, 0, len(st.Items))
	for _, it := range st.Items {
		switch {
		case it.Star:
			return nil, nil, types.Schema{}, fmt.Errorf("vertica: SELECT * cannot be mixed with aggregates")
		case it.Agg != "":
			name := it.Alias
			if name == "" {
				name = strings.ToLower(string(it.Agg))
			}
			t := types.Float64
			if it.Agg == vsql.AggCount {
				t = types.Int64
			} else if it.Arg != nil {
				at := inferType(it.Arg, schema)
				if it.Agg == vsql.AggMin || it.Agg == vsql.AggMax || (it.Agg == vsql.AggSum && at == types.Int64) {
					t = at
				}
			}
			outSchema.Cols = append(outSchema.Cols, types.Column{Name: name, T: t})
			plans = append(plans, aggItemPlan{agg: it.Agg, arg: it.Arg, groupCol: -1})
		default:
			col, ok := it.Expr.(*expr.Col)
			if !ok {
				return nil, nil, types.Schema{}, fmt.Errorf("vertica: non-aggregate select item must be a grouping column")
			}
			gi := -1
			for k, idx := range groupIdx {
				if schema.ColIndex(col.Name) == idx {
					gi = k
					break
				}
			}
			if gi < 0 {
				return nil, nil, types.Schema{}, fmt.Errorf("vertica: column %q must appear in GROUP BY", col.Name)
			}
			name := it.Alias
			if name == "" {
				name = col.Name
			}
			outSchema.Cols = append(outSchema.Cols, types.Column{Name: name, T: schema.Cols[groupIdx[gi]].T})
			plans = append(plans, aggItemPlan{groupCol: gi})
		}
	}
	return plans, groupIdx, outSchema, nil
}

// aggregate evaluates aggregates with optional GROUP BY. Non-aggregate items
// must be grouping columns.
func aggregate(st *vsql.Select, rows []types.Row, schema types.Schema) ([]types.Row, types.Schema, error) {
	plans, groupIdx, outSchema, err := buildAggPlan(st, schema)
	if err != nil {
		return nil, types.Schema{}, err
	}

	type group struct {
		key    []types.Value
		states []*aggState
	}
	groups := make(map[string]*group)
	var order []string
	keyOf := func(r types.Row) (string, []types.Value) {
		if len(groupIdx) == 0 {
			return "", nil
		}
		vals := make([]types.Value, len(groupIdx))
		var sb strings.Builder
		for k, idx := range groupIdx {
			vals[k] = r[idx]
			// The null flag keeps a NULL key distinct from the string "NULL"
			// (both render as "NULL").
			if r[idx].Null {
				sb.WriteByte('n')
			} else {
				sb.WriteByte('v')
			}
			sb.WriteString(r[idx].String())
			sb.WriteByte(0)
		}
		return sb.String(), vals
	}
	ensure := func(key string, vals []types.Value) *group {
		g, ok := groups[key]
		if !ok {
			g = &group{key: vals, states: make([]*aggState, len(plans))}
			for i := range g.states {
				g.states[i] = &aggState{}
			}
			groups[key] = g
			order = append(order, key)
		}
		return g
	}
	if len(groupIdx) == 0 {
		ensure("", nil) // global aggregate over zero rows still yields one row
	}
	for _, r := range rows {
		key, vals := keyOf(r)
		g := ensure(key, vals)
		for i, pl := range plans {
			if pl.groupCol >= 0 {
				continue
			}
			var v types.Value
			if pl.arg != nil {
				var err error
				v, err = pl.arg.Eval(r, &schema)
				if err != nil {
					return nil, types.Schema{}, err
				}
			}
			g.states[i].update(pl.agg, v, pl.arg == nil)
		}
	}
	out := make([]types.Row, 0, len(order))
	for _, key := range order {
		g := groups[key]
		row := make(types.Row, len(plans))
		for i, pl := range plans {
			if pl.groupCol >= 0 {
				row[i] = g.key[pl.groupCol]
			} else {
				row[i] = g.states[i].result(pl.agg)
			}
		}
		out = append(out, row)
	}
	return out, outSchema, nil
}
