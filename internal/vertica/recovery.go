package vertica

import (
	"fmt"

	"vsfabric/internal/obs"
	"vsfabric/internal/rebalance"
	"vsfabric/internal/storage"
	"vsfabric/internal/txn"
)

// This file implements node recovery: a node returning from a down window
// re-enters the cluster as RECOVERING, rebuilds every store it hosts from a
// live buddy replica, and rejoins the ring for reads only once caught up.
//
// While a node is DOWN its stores receive no writes, so they are stale by
// exactly the epochs committed during the window. Rather than replaying those
// epochs incrementally, recovery rebuilds each hosted store wholesale: under
// the table's EXCLUSIVE lock, export the committed row versions of the same
// segment from a healthy replica and swap them in with ReplaceContents. The
// export carries full MVCC history (insert and delete epochs), so the rebuilt
// store answers AT EPOCH queries for any still-pinned historical epoch
// exactly as the replica does. The exclusive lock guarantees no provisional
// rows exist during the copy and that no writer is mid-flight on the table;
// writes that began after the node flipped to RECOVERING land on its stores
// anyway (RECOVERING accepts writes), so a table reconciled early in the pass
// cannot go stale again before the node is UP.
//
// Recovery is memory-safe against concurrent writers without extra locking:
// the RECOVERING flip happens-before the per-table EXCLUSIVE acquire, which
// happens-before any later writer's lock acquire, so every post-recovery
// writer observes the node as write-accepting.

// RecoverNode transitions a DOWN node through RECOVERING back to UP,
// rebuilding each of its stale stores from a live replica. On a per-table
// failure (e.g. k-safety exhausted because another node is also down) the
// node reverts to DOWN so a later heal retries from scratch. Recovering an
// UP node is a no-op; a REMOVED node cannot recover.
func (c *Cluster) RecoverNode(id int) error {
	c.membershipMu.Lock()
	defer c.membershipMu.Unlock()

	n := c.node(id)
	if n == nil {
		return fmt.Errorf("vertica: no node %d in %d-node cluster", id, c.NumNodes())
	}
	switch n.State() {
	case NodeUp:
		return nil
	case NodeRemoved:
		return fmt.Errorf("%w: node %d", ErrNodeRemoved, id)
	}
	n.setState(NodeRecovering)
	sp := obs.Start(c.mon, "recover_node", n.Name)
	c.mon.Add("cluster.node_recoveries", 1)

	for _, tbl := range c.cat.Tables() {
		if err := c.recoverTable(n, tbl.Def.Name); err != nil {
			n.setState(NodeDown)
			if sp != nil {
				sp.End(err)
			}
			return fmt.Errorf("vertica: recovering node %d table %q: %w", id, tbl.Def.Name, err)
		}
	}
	// The recovery epoch: every store the node hosts now reflects all commits
	// up to (at least) the epoch its table's reconciliation closed over.
	epoch := c.txm.LastEpoch()
	n.recoveryEpoch.Store(epoch)
	n.setState(NodeUp)
	if sp != nil {
		sp.SetDetail(fmt.Sprintf("caught up to epoch %d", epoch))
		sp.End(nil)
	}
	return nil
}

// recoverTable rebuilds every store of one table hosted on node n from live
// replicas, inside an EXCLUSIVE-locked transaction. Tables whose ring does
// not include the node have nothing hosted there and are skipped.
func (c *Cluster) recoverTable(n *Node, name string) error {
	tx := c.txm.Begin()
	defer tx.Abort()
	if err := tx.Acquire(name, txn.LockExclusive); err != nil {
		return err
	}
	tbl, ok := c.cat.Table(name)
	if !ok {
		return nil // dropped while we waited
	}
	pos := tbl.PosOf(n.ID)
	if pos < 0 {
		return nil // not in this table's ring (added mid-window, pre-rebalance)
	}
	healthy := func(id int) bool { return c.nodeUp(id) }
	opID := c.reb.start("recovery", name, n.ID, c.txm.LastEpoch())
	var res rebalance.Result
	res.Table = name

	rebuild := func(dst *storage.Store, seg int) error {
		if !dst.Stale() {
			// The store missed nothing: either no write committed during the
			// down window, or writes to its segment were rejected outright
			// because no replica was writable. Its contents are current.
			return nil
		}
		src, err := rebalance.SourceFor(tbl, seg, healthy)
		if err != nil {
			return err
		}
		if src == dst {
			return nil
		}
		versions := src.ExportVersions()
		if err := dst.ReplaceContents(versions); err != nil {
			return err
		}
		dst.ClearStale()
		res.Rows += len(versions)
		res.RowsMoved += len(versions)
		res.Containers += dst.ContainerCount()
		return nil
	}

	// The node's primary store holds segment pos; each buddy slot it hosts,
	// Buddies[r][pos], holds the segment whose home position is (pos-r-1)
	// mod n. Unsegmented tables keep a full replica at every position, and
	// SourceFor(…, seg=pos, …) finds any healthy one.
	nseg := tbl.NumNodes()
	if err := rebuild(tbl.Stores[pos], pos); err != nil {
		c.reb.finish(opID, res, c.txm.LastEpoch(), err)
		return err
	}
	for r := range tbl.Buddies {
		seg := ((pos-r-1)%nseg + nseg) % nseg
		if err := rebuild(tbl.Buddies[r][pos], seg); err != nil {
			c.reb.finish(opID, res, c.txm.LastEpoch(), err)
			return err
		}
	}
	// Commit closes the table's recovery epoch. The transaction wrote nothing
	// provisional — ReplaceContents installs already-committed versions — so
	// the commit's only effects are the epoch close and the lock release.
	epoch, err := tx.Commit()
	c.reb.finish(opID, res, epoch, err)
	return err
}
