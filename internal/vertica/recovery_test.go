package vertica

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vsfabric/internal/storage"
	"vsfabric/internal/wal"
)

func durableCluster(t *testing.T, dir string, cache *storage.ContainerCache) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Nodes: 2, DataDir: dir, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// dumpTable returns the table's rows as sorted "col|col|..." strings, or nil
// if the table does not exist (a crash can land before its CREATE is durable).
func dumpTable(s *Session, table string) []string {
	res, err := s.Execute("SELECT * FROM " + table)
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			if v.Null {
				parts[i] = "NULL"
			} else {
				parts[i] = v.String()
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cache := storage.NewContainerCache(0)

	c := durableCluster(t, dir, cache)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE ev (id INTEGER, v FLOAT, name VARCHAR) SEGMENTED BY HASH(id)")
	s.MustExecute("INSERT INTO ev VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, NULL, NULL)")
	if _, err := s.CopyFrom("COPY ev FROM STDIN FORMAT CSV DIRECT",
		strings.NewReader("10,0.5,x\n11,0.25,y\n")); err != nil {
		t.Fatal(err)
	}
	s.MustExecute("DELETE FROM ev WHERE id = 2")
	s.MustExecute("UPDATE ev SET name = 'z' WHERE id = 3")
	s.MustExecute("CREATE TABLE tmp (id INTEGER)")
	s.MustExecute("ALTER TABLE tmp RENAME TO renamed")
	s.MustExecute("CREATE VIEW big AS SELECT id FROM ev WHERE id >= 10")
	want := dumpTable(s, "ev")
	wantEpoch := c.LastEpoch()
	s.Close()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := durableCluster(t, dir, cache)
	defer c2.Close()
	s2 := sess(t, c2, 1)
	if got := dumpTable(s2, "ev"); !sameRows(got, want) {
		t.Fatalf("reopen lost data:\n got %v\nwant %v", got, want)
	}
	if got := c2.LastEpoch(); got != wantEpoch {
		t.Fatalf("reopen at epoch %d, want %d", got, wantEpoch)
	}
	if _, ok := c2.Catalog().Table("renamed"); !ok {
		t.Fatal("renamed table lost across restart")
	}
	if res := s2.MustExecute("SELECT COUNT(*) FROM big"); mustI(t, res) != 2 {
		t.Fatal("view lost across restart")
	}
	// The reopened cluster keeps working and keeps being durable.
	s2.MustExecute("INSERT INTO ev VALUES (50, 5.0, 'post')")
	want2 := dumpTable(s2, "ev")
	s2.Close()
	c2.Close()
	c3 := durableCluster(t, dir, cache)
	defer c3.Close()
	s3 := sess(t, c3, 0)
	if got := dumpTable(s3, "ev"); !sameRows(got, want2) {
		t.Fatalf("second reopen lost data:\n got %v\nwant %v", got, want2)
	}
}

func mustI(t *testing.T, res *Result) int64 {
	t.Helper()
	v, err := res.Value()
	if err != nil {
		t.Fatal(err)
	}
	return v.I
}

func TestCheckpointTruncatesWALAndReopens(t *testing.T) {
	dir := t.TempDir()
	cache := storage.NewContainerCache(0)
	c := durableCluster(t, dir, cache)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, v INTEGER) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 200; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i*10))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
	s.MustExecute("DELETE FROM t WHERE id = 7")

	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The WAL was cut over to a fresh file holding just the checkpoint record,
	// the old file is gone, and containers landed on disk.
	if _, err := os.Stat(filepath.Join(dir, "wal-1.log")); !os.IsNotExist(err) {
		t.Fatalf("old WAL not removed after checkpoint: %v", err)
	}
	recs, err := wal.ReadAll(filepath.Join(dir, "wal-2.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != wal.RecCheckpoint {
		t.Fatalf("post-checkpoint WAL has %d records: %+v", len(recs), recs)
	}
	ros, _ := filepath.Glob(filepath.Join(dir, "node-*", "c-*.ros"))
	if len(ros) == 0 {
		t.Fatal("checkpoint wrote no container files")
	}
	if n := c.Obs().Counter("checkpoint.containers_written"); n == 0 {
		t.Fatal("checkpoint.containers_written counter never bumped")
	}

	// Writes after the checkpoint replay from the new WAL on reopen.
	s.MustExecute("INSERT INTO t VALUES (500, 1)")
	want := dumpTable(s, "t")
	wantEpoch := c.LastEpoch()
	s.Close()
	c.Close()

	c2 := durableCluster(t, dir, cache)
	defer c2.Close()
	s2 := sess(t, c2, 0)
	if got := dumpTable(s2, "t"); !sameRows(got, want) {
		t.Fatalf("post-checkpoint reopen:\n got %d rows\nwant %d rows", len(got), len(want))
	}
	if c2.LastEpoch() != wantEpoch {
		t.Fatalf("epoch %d after reopen, want %d", c2.LastEpoch(), wantEpoch)
	}
	s2.Close()
	c2.Close()

	// The first reopen faulted the container files in; a second reopen of the
	// same directory must serve them from the shared cache.
	_, missesBefore, _ := cache.Stats()
	c3 := durableCluster(t, dir, cache)
	defer c3.Close()
	hits, misses, _ := cache.Stats()
	if hits == 0 || misses != missesBefore {
		t.Fatalf("second reopen not served from cache (hits=%d misses=%d->%d)", hits, missesBefore, misses)
	}
	s3 := sess(t, c3, 1)
	if got := dumpTable(s3, "t"); !sameRows(got, want) {
		t.Fatalf("cached reopen lost rows: %d, want %d", len(got), len(want))
	}
}

// crashStep is one workload statement plus everything needed to re-apply it
// to a model cluster. A step is "acknowledged" when run returns nil — for
// composite transactions, when COMMIT returned nil.
type crashStep struct {
	name string
	run  func(s *Session) error
}

func execStep(name, sql string) crashStep {
	return crashStep{name, func(s *Session) error {
		_, err := s.Execute(sql)
		return err
	}}
}

func txnStep(name string, body []string, commit bool) crashStep {
	return crashStep{name, func(s *Session) error {
		if _, err := s.Execute("BEGIN"); err != nil {
			return err
		}
		for _, sql := range body {
			if _, err := s.Execute(sql); err != nil {
				_, _ = s.Execute("ROLLBACK")
				return err
			}
		}
		final := "ROLLBACK"
		if commit {
			final = "COMMIT"
		}
		_, err := s.Execute(final)
		return err
	}}
}

func copyStep(name, data string) crashStep {
	return crashStep{name, func(s *Session) error {
		_, err := s.CopyFrom("COPY t FROM STDIN FORMAT CSV DIRECT", strings.NewReader(data))
		return err
	}}
}

func sweepWorkload() []crashStep {
	return []crashStep{
		execStep("create", "CREATE TABLE t (id INTEGER, v INTEGER) SEGMENTED BY HASH(id)"),
		execStep("insert1", "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)"),
		copyStep("copy", "10,100\n11,110\n12,120\n"),
		execStep("delete", "DELETE FROM t WHERE id = 2"),
		execStep("update", "UPDATE t SET v = 99 WHERE id = 3"),
		txnStep("txn-commit", []string{
			"INSERT INTO t VALUES (20, 200)",
			"DELETE FROM t WHERE id = 10",
		}, true),
		txnStep("txn-abort", []string{"INSERT INTO t VALUES (30, 300)"}, false),
		execStep("insert2", "INSERT INTO t VALUES (41, 410), (42, 420)"),
	}
}

// runSteps executes the workload, recording which steps were acknowledged.
// Errors are expected once the WAL "crashes" — later statements keep failing.
func runSteps(t *testing.T, c *Cluster, steps []crashStep) []bool {
	t.Helper()
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	acks := make([]bool, len(steps))
	for i, st := range steps {
		acks[i] = st.run(s) == nil
	}
	return acks
}

// modelState replays the acknowledged steps on a fresh in-memory cluster and
// returns the rows the recovered cluster must show, plus the expected epoch.
func modelState(t *testing.T, steps []crashStep, acks []bool) ([]string, uint64) {
	t.Helper()
	m, err := NewCluster(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, st := range steps {
		if !acks[i] {
			continue
		}
		if err := st.run(s); err != nil {
			t.Fatalf("model replay of acknowledged step %q failed: %v", steps[i].name, err)
		}
	}
	return dumpTable(s, "t"), m.LastEpoch()
}

// countWorkloadAppends runs the workload cleanly and counts the WAL records
// it appends (excluding the fresh-directory checkpoint record).
func countWorkloadAppends(t *testing.T, steps []crashStep) int {
	t.Helper()
	dir := t.TempDir()
	c := durableCluster(t, dir, nil)
	acks := runSteps(t, c, steps)
	for i, ok := range acks {
		if !ok {
			t.Fatalf("clean run: step %q failed", steps[i].name)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := wal.ReadAll(filepath.Join(dir, "wal-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 || recs[0].Type != wal.RecCheckpoint {
		t.Fatalf("unexpected clean log: %d records", len(recs))
	}
	return len(recs) - 1
}

// verifyRecovery reopens the directory and checks the recovered state matches
// the acknowledged prefix exactly: no committed row lost, no unacknowledged
// or aborted row resurfacing. It also proves the cluster is writable again.
func verifyRecovery(t *testing.T, label, dir string, cache *storage.ContainerCache, steps []crashStep, acks []bool) {
	t.Helper()
	want, wantEpoch := modelState(t, steps, acks)
	c, err := NewCluster(Config{Nodes: 2, DataDir: dir, Cache: cache})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer c.Close()
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := dumpTable(s, "t")
	if !sameRows(got, want) {
		t.Fatalf("%s (acks %v):\nrecovered %v\n expected %v", label, acks, got, want)
	}
	if got, wantE := c.LastEpoch(), wantEpoch; got != wantE {
		t.Fatalf("%s: recovered epoch %d, want %d", label, got, wantE)
	}
	// The survivor must accept new durable writes.
	if want != nil {
		if _, err := s.Execute("INSERT INTO t VALUES (900, 9)"); err != nil {
			t.Fatalf("%s: post-recovery insert failed: %v", label, err)
		}
	}
}

// TestKillAndRestartSweep simulates a kill -9 at EVERY WAL record boundary of
// the workload: the n+1th append writes half a frame and the process "dies"
// (all later WAL operations fail). Recovery must reproduce exactly the
// acknowledged prefix at each crash point.
func TestKillAndRestartSweep(t *testing.T) {
	steps := sweepWorkload()
	appends := countWorkloadAppends(t, steps)
	if appends < 10 {
		t.Fatalf("workload too small to sweep: %d appends", appends)
	}
	for n := 0; n < appends; n++ {
		dir := t.TempDir()
		cache := storage.NewContainerCache(0)
		c := durableCluster(t, dir, cache)
		c.curWAL().FailAfterRecords(n)
		acks := runSteps(t, c, steps)
		_ = c.Close()
		verifyRecovery(t, fmt.Sprintf("crash@%d", n), dir, cache, steps, acks)
	}
}

// crashAtRecord finds the workload's first post-checkpoint record satisfying
// match and returns its 0-based append index (what FailAfterRecords needs to
// tear exactly that record).
func crashAtRecord(t *testing.T, steps []crashStep, match func(wal.Record) bool) int {
	t.Helper()
	dir := t.TempDir()
	c := durableCluster(t, dir, nil)
	runSteps(t, c, steps)
	c.Close()
	recs, err := wal.ReadAll(filepath.Join(dir, "wal-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs[1:] {
		if match(r) {
			return i
		}
	}
	t.Fatal("no matching record in clean run")
	return -1
}

// TestCrashMidCopy kills the node exactly as the COPY's direct-load insert
// record is being written: the load was never acknowledged, so none of its
// rows may appear after restart, while every earlier commit survives.
func TestCrashMidCopy(t *testing.T) {
	steps := sweepWorkload()
	n := crashAtRecord(t, steps, func(r wal.Record) bool {
		return r.Type == wal.RecInsert && r.Direct
	})
	dir := t.TempDir()
	cache := storage.NewContainerCache(0)
	c := durableCluster(t, dir, cache)
	c.curWAL().FailAfterRecords(n)
	acks := runSteps(t, c, steps)
	if acks[2] {
		t.Fatal("COPY was acknowledged despite the crash")
	}
	if !acks[0] || !acks[1] {
		t.Fatal("steps before the COPY should have succeeded")
	}
	_ = c.Close()
	verifyRecovery(t, "mid-copy", dir, cache, steps, acks)
}

// TestCrashMidCommit kills the node while the commit record itself is being
// written. The statement was not acknowledged, so its rows must not appear —
// the classic torn-commit case.
func TestCrashMidCommit(t *testing.T) {
	steps := sweepWorkload()
	n := crashAtRecord(t, steps, func(r wal.Record) bool {
		return r.Type == wal.RecCommit
	})
	dir := t.TempDir()
	cache := storage.NewContainerCache(0)
	c := durableCluster(t, dir, cache)
	c.curWAL().FailAfterRecords(n)
	acks := runSteps(t, c, steps)
	_ = c.Close()
	verifyRecovery(t, "mid-commit", dir, cache, steps, acks)
}

// TestReplayPropertyRandomInterleavings drives random workloads (inserts,
// deletes, updates, committed and aborted transactions) into a crash at a
// random record index, then checks the recovered state equals the
// acknowledged prefix. Seeded: failures reproduce.
func TestReplayPropertyRandomInterleavings(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		steps := []crashStep{execStep("create", "CREATE TABLE t (id INTEGER, v INTEGER) SEGMENTED BY HASH(id)")}
		nextID := 0
		for i := 0; i < 7; i++ {
			switch rng.Intn(4) {
			case 0:
				var vals []string
				for j := 0; j <= rng.Intn(3); j++ {
					vals = append(vals, fmt.Sprintf("(%d, %d)", nextID, rng.Intn(1000)))
					nextID++
				}
				steps = append(steps, execStep(fmt.Sprintf("ins%d", i),
					"INSERT INTO t VALUES "+strings.Join(vals, ", ")))
			case 1:
				steps = append(steps, execStep(fmt.Sprintf("del%d", i),
					fmt.Sprintf("DELETE FROM t WHERE id < %d", rng.Intn(nextID+1))))
			case 2:
				steps = append(steps, execStep(fmt.Sprintf("upd%d", i),
					fmt.Sprintf("UPDATE t SET v = %d WHERE id >= %d", rng.Intn(100), rng.Intn(nextID+1))))
			case 3:
				body := []string{fmt.Sprintf("INSERT INTO t VALUES (%d, 1)", nextID)}
				nextID++
				steps = append(steps, txnStep(fmt.Sprintf("txn%d", i), body, rng.Intn(2) == 0))
			}
		}
		appends := countWorkloadAppends(t, steps)
		n := rng.Intn(appends)
		dir := t.TempDir()
		cache := storage.NewContainerCache(0)
		c := durableCluster(t, dir, cache)
		c.curWAL().FailAfterRecords(n)
		acks := runSteps(t, c, steps)
		_ = c.Close()
		verifyRecovery(t, fmt.Sprintf("seed%d@%d", seed, n), dir, cache, steps, acks)
	}
}

// TestAtEpochDuringMoveoutKeepsPinnedRows is the regression test for the
// moveout row-loss bug: an AT EPOCH reader pinned before a committed delete
// must see the same rows before and after the tuple mover runs. (The old
// DrainCommitted purged every committed-deleted row unconditionally.)
func TestAtEpochDuringMoveoutKeepsPinnedRows(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 50; i++ {
		vals = append(vals, fmt.Sprintf("(%d)", i))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
	pinned := c.LastEpoch()

	// A long-lived reader (a V2S transfer job holding a snapshot) pins its
	// epoch for the session, spanning multiple statements.
	reader := sess(t, c, 1)
	if err := reader.PinEpoch(pinned); err != nil {
		t.Fatal(err)
	}
	atPinned := fmt.Sprintf("AT EPOCH %d SELECT COUNT(*) FROM t", pinned)
	if n := mustI(t, reader.MustExecute(atPinned)); n != 50 {
		t.Fatalf("pre-moveout pinned count = %d", n)
	}

	s.MustExecute("DELETE FROM t WHERE id < 25") // commits after the pin
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}
	// The deleted rows were committed-deleted AFTER the pinned epoch; moveout
	// must retain them for the pinned reader.
	if n := mustI(t, reader.MustExecute(atPinned)); n != 50 {
		t.Fatalf("moveout lost rows out from under a pinned reader: count = %d, want 50", n)
	}
	if n := mustI(t, reader.MustExecute("SELECT COUNT(*) FROM t")); n != 25 {
		t.Fatalf("latest count = %d, want 25", n)
	}

	// Once the reader unpins, the next moveout may reclaim; latest stays right.
	reader.UnpinEpochs()
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}
	if n := mustI(t, s.MustExecute("SELECT COUNT(*) FROM t")); n != 25 {
		t.Fatalf("post-unpin latest count = %d, want 25", n)
	}

	// PinEpoch validates against the current epoch.
	if err := reader.PinEpoch(c.LastEpoch() + 10); err == nil {
		t.Fatal("pinning a future epoch should fail")
	}
}

// TestDurableAtEpochAcrossCheckpoint: same invariant under durability, where
// Moveout is a full checkpoint. The pinned reader's rows must survive the
// checkpoint AND a restart must not resurrect the deleted rows at latest.
func TestDurableAtEpochAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cache := storage.NewContainerCache(0)
	c := durableCluster(t, dir, cache)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 40; i++ {
		vals = append(vals, fmt.Sprintf("(%d)", i))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
	pinned := c.LastEpoch()

	reader := sess(t, c, 1)
	if err := reader.PinEpoch(pinned); err != nil {
		t.Fatal(err)
	}
	s.MustExecute("DELETE FROM t WHERE id >= 30")
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	atPinned := fmt.Sprintf("AT EPOCH %d SELECT COUNT(*) FROM t", pinned)
	if n := mustI(t, reader.MustExecute(atPinned)); n != 40 {
		t.Fatalf("checkpoint lost pinned rows: %d, want 40", n)
	}
	reader.Close()
	s.Close()
	c.Close()

	c2 := durableCluster(t, dir, cache)
	defer c2.Close()
	s2 := sess(t, c2, 0)
	if n := mustI(t, s2.MustExecute("SELECT COUNT(*) FROM t")); n != 30 {
		t.Fatalf("restart resurrected deleted rows: %d, want 30", n)
	}
}
