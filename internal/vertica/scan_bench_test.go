package vertica

import (
	"fmt"
	"strings"
	"testing"
)

// benchScanRows is the table size the scan benchmarks run against: 1M rows
// hash-segmented across 4 nodes, matching the acceptance bar in ISSUE 3
// (vectorized must beat the row-at-a-time reference by >= 5x rows/s on a
// selective integer predicate).
const benchScanRows = 1_000_000

// buildScanBenchCluster loads a 1M-row segmented table via COPY ... DIRECT.
// grp cycles 0..99, so `grp = 7` selects 1% of the rows.
func buildScanBenchCluster(b *testing.B, rowAtATime bool) *Session {
	b.Helper()
	c, err := NewCluster(Config{Nodes: 4, RowAtATimeScans: rowAtATime})
	if err != nil {
		b.Fatal(err)
	}
	s, err := c.Connect(0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	s.MustExecute("CREATE TABLE bench_scan (id INTEGER, grp INTEGER, val FLOAT) SEGMENTED BY HASH(id)")
	var csv strings.Builder
	csv.Grow(benchScanRows * 16)
	for i := 0; i < benchScanRows; i++ {
		fmt.Fprintf(&csv, "%d,%d,%d.5\n", i, i%100, i%1000)
	}
	if _, err := s.CopyFrom("COPY bench_scan FROM STDIN FORMAT CSV DIRECT",
		strings.NewReader(csv.String())); err != nil {
		b.Fatal(err)
	}
	return s
}

func benchSelectiveScan(b *testing.B, rowAtATime bool) {
	s := buildScanBenchCluster(b, rowAtATime)
	const q = "SELECT id, val FROM bench_scan WHERE grp = 7"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != benchScanRows/100 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchScanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkScanVectorized(b *testing.B) { benchSelectiveScan(b, false) }
func BenchmarkScanRowAtATime(b *testing.B) { benchSelectiveScan(b, true) }

func benchCount(b *testing.B, rowAtATime bool) {
	s := buildScanBenchCluster(b, rowAtATime)
	const q = "SELECT COUNT(*) FROM bench_scan WHERE id >= 0"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Execute(q)
		if err != nil {
			b.Fatal(err)
		}
		if v, _ := res.Value(); v.I != benchScanRows {
			b.Fatalf("count = %v", v)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchScanRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkCountVectorized(b *testing.B) { benchCount(b, false) }
func BenchmarkCountRowAtATime(b *testing.B) { benchCount(b, true) }
