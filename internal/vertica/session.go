package vertica

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"vsfabric/internal/obs"
	"vsfabric/internal/sim"
	"vsfabric/internal/txn"
	"vsfabric/internal/types"
	"vsfabric/internal/vsql"
)

// Result is the outcome of one statement.
type Result struct {
	Schema       types.Schema
	Rows         []types.Row
	RowsAffected int64
	// Epoch is the snapshot epoch a SELECT read at, or the commit epoch of a
	// committed write. V2S uses the former to pin all partition queries to
	// one consistent snapshot (§3.1.2).
	Epoch uint64
	// Copy carries bulk-load statistics when the statement was a COPY.
	Copy *CopyResult
}

// Value returns the single value of a one-row, one-column result.
func (r *Result) Value() (types.Value, error) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return types.Value{}, fmt.Errorf("vertica: result is %d rows × %d cols, want 1×1", len(r.Rows), len(r.Schema.Cols))
	}
	return r.Rows[0][0], nil
}

// CopyResult reports bulk-load statistics.
type CopyResult struct {
	Loaded   int64
	Rejected int64
	// RejectedSample holds up to 10 rejected input records with reasons,
	// mirroring the connector API's rejected-row sample (§3.2).
	RejectedSample []string
}

// Session is one client connection to one node. A session is used by a
// single goroutine at a time, like a JDBC connection.
type Session struct {
	cluster *Cluster
	node    *Node
	tx      *txn.Txn // open explicit transaction, nil in autocommit

	// obsv is the caller's observer for the current statement, extracted
	// from the statement context (the sim cost recorder in benchmarks, a
	// collector in tests); peer names the connecting client's host in the
	// simulated topology (e.g. "s3"); curSQL is the statement's source text
	// for v_monitor.query_plans. All are reset per statement.
	obsv   obs.Observer
	peer   string
	curSQL string
	// copyLocal marks the current COPY as reading a node-local file, so its
	// resource event charges the node's disk instead of the network.
	copyLocal bool

	// pinRelease releases the session's explicit epoch pins (PinEpoch) on
	// UnpinEpochs or Close.
	pinRelease []func()

	// poolName is the resource pool statements are admitted through,
	// changed by SET SESSION RESOURCE_POOL. Empty means the general pool.
	poolName string

	// Query-event state, reset per statement: sysStmt marks monitoring reads
	// (they never raise events), curTrace is the statement's trace id, and
	// stmtEvents accumulates the typed events the statement raised (PROFILE
	// renders them inline).
	sysStmt    bool
	curTrace   uint64
	stmtEvents []obs.QueryEvent

	// slowQuery overrides the cluster's SLOW_QUERY threshold when
	// slowQuerySet (SET SESSION SLOW_QUERY_THRESHOLD).
	slowQuery    time.Duration
	slowQuerySet bool

	closed bool
}

// Node returns the node this session is connected to.
func (s *Session) Node() *Node { return s.node }

// Close releases the session, aborting any open transaction and dropping
// its epoch pins.
func (s *Session) Close() {
	if s.closed {
		return
	}
	if s.tx != nil {
		s.tx.Abort()
		s.tx = nil
	}
	s.UnpinEpochs()
	s.cluster.releaseSession(s.node.ID)
	s.closed = true
}

// PinEpoch pins an epoch for the session's lifetime: until UnpinEpochs (or
// Close), the tuple mover will not purge rows still visible at that epoch.
// A connector job that spreads AT EPOCH partition queries across many
// statements pins its snapshot once up front, guaranteeing every query sees
// the identical row set however many moveouts run in between (§3.1.2).
func (s *Session) PinEpoch(epoch uint64) error {
	if s.closed {
		return fmt.Errorf("vertica: session is closed")
	}
	if epoch > s.cluster.txm.LastEpoch() {
		return fmt.Errorf("vertica: epoch %d has not closed yet (last epoch %d)", epoch, s.cluster.txm.LastEpoch())
	}
	s.pinRelease = append(s.pinRelease, s.cluster.txm.PinEpoch(epoch))
	return nil
}

// UnpinEpochs releases every epoch pinned via PinEpoch.
func (s *Session) UnpinEpochs() {
	for _, rel := range s.pinRelease {
		rel()
	}
	s.pinRelease = nil
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil }

// Execute parses and runs one SQL statement under a background context.
func (s *Session) Execute(sql string) (*Result, error) {
	return s.ExecuteContext(context.Background(), sql)
}

// ExecuteContext parses and runs one SQL statement. The context carries
// cancellation and, via obs.With / obs.WithPeer, the caller's observer and
// client-host name for the performance layer.
func (s *Session) ExecuteContext(ctx context.Context, sql string) (*Result, error) {
	stmt, err := vsql.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.executeStmtCtx(ctx, stmt, sql)
}

// MustExecute is Execute for setup code where failure is a bug.
func (s *Session) MustExecute(sql string) *Result {
	r, err := s.Execute(sql)
	if err != nil {
		panic(fmt.Sprintf("vertica: %v (sql: %s)", err, sql))
	}
	return r
}

// ExecuteStmt runs a parsed statement under a background context.
func (s *Session) ExecuteStmt(stmt vsql.Statement) (*Result, error) {
	return s.executeStmtCtx(context.Background(), stmt, "")
}

// executeStmtCtx runs one statement: it binds the context's observer and
// peer to the session for the statement's duration, opens the engine-side
// "execute" span feeding v_monitor.query_requests, and dispatches.
func (s *Session) executeStmtCtx(ctx context.Context, stmt vsql.Statement, sqlText string) (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("vertica: session is closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.obsv = obs.From(ctx)
	s.peer = obs.Peer(ctx)
	s.curSQL = sqlText
	s.sysStmt = systemRead(stmt)
	s.curTrace = obs.SpanContextFrom(ctx).TraceID
	s.stmtEvents = nil
	release, err := s.admitStmt(ctx, stmt)
	if err != nil {
		return nil, err
	}
	if release != nil {
		defer release()
	}
	sp := s.startExecSpan(ctx, stmt, sqlText)
	if sp != nil {
		s.curTrace = sp.SpanContext().TraceID
	}
	start := time.Now()
	res, err := s.dispatch(ctx, stmt)
	dur := time.Since(start)
	if sp != nil {
		if res != nil {
			rows := int64(len(res.Rows))
			if rows == 0 {
				rows = res.RowsAffected
			}
			sp.AddRows(rows)
		}
		sp.End(err)
		if thr := s.slowQueryThreshold(); thr > 0 && dur >= thr {
			s.raiseEvent(obs.EvSlowQuery, "statement exceeded slow-query threshold",
				dur.Microseconds(), thr.Microseconds())
		}
	}
	return res, err
}

// startExecSpan opens the query_requests span for a statement, parented
// under the context's active trace (a connector job phase, possibly on the
// far side of a TCP connection). Reads of the v_monitor / v_catalog virtual
// tables are exempt: monitoring queries must not pollute the history they
// observe.
func (s *Session) startExecSpan(ctx context.Context, stmt vsql.Statement, sqlText string) *obs.ActiveSpan {
	if systemRead(stmt) {
		return nil
	}
	sp := obs.StartChild(ctx, s.cluster.mon, "execute", s.node.Name)
	if sp == nil {
		return nil
	}
	sp.SetPeer(s.peer)
	if sqlText == "" {
		sqlText = fmt.Sprintf("%T", stmt)
	}
	sp.SetDetail(sqlText)
	return sp
}

// systemRead reports whether stmt is a SELECT over a system table.
func systemRead(stmt vsql.Statement) bool {
	sel, ok := stmt.(*vsql.Select)
	if !ok || sel.From == nil {
		return false
	}
	return strings.HasPrefix(sel.From.Name, "v_monitor.") || strings.HasPrefix(sel.From.Name, "v_catalog.")
}

// dispatch routes a parsed statement to its executor.
func (s *Session) dispatch(ctx context.Context, stmt vsql.Statement) (*Result, error) {
	switch s.node.State() {
	case NodeDown:
		return nil, fmt.Errorf("%w: node %d went down", ErrNodeDown, s.node.ID)
	case NodeRemoved:
		return nil, fmt.Errorf("%w: node %d", ErrNodeRemoved, s.node.ID)
	case NodeRecovering:
		// A recovering node serves only monitoring reads (an operator watching
		// v_monitor.node_states through the node itself); everything else
		// waits for the catch-up to finish and reports as a transient
		// node-down condition so resilient clients fail over.
		if !systemRead(stmt) {
			return nil, fmt.Errorf("%w: node %d is recovering", ErrNodeDown, s.node.ID)
		}
	}
	switch st := stmt.(type) {
	case *vsql.Select:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedQuery})
		return s.executeSelect(st)
	case *vsql.Profile:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedQuery})
		return s.executeProfile(st)
	case *vsql.Explain:
		return s.executeExplain(st)
	case *vsql.Insert:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedQuery})
		return s.executeInsert(st)
	case *vsql.Update:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedQuery})
		return s.executeUpdate(st)
	case *vsql.Delete:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedQuery})
		return s.executeDelete(st)
	case *vsql.CreateTable:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedTableDDL})
		return s.executeCreateTable(st)
	case *vsql.DropTable:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedTableDDL})
		return s.executeDropTable(st)
	case *vsql.CreateView:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedTableDDL})
		return s.executeCreateView(st)
	case *vsql.DropView:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedTableDDL})
		return s.executeDropView(st)
	case *vsql.AlterRename:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedTableDDL})
		return s.executeRename(st)
	case *vsql.AlterCluster:
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedTableDDL})
		return s.executeAlterCluster(st)
	case *vsql.CreateResourcePool:
		return s.executeCreatePool(st)
	case *vsql.AlterResourcePool:
		return s.executeAlterPool(st)
	case *vsql.DropResourcePool:
		return s.executeDropPool(st)
	case *vsql.Set:
		return s.executeSet(st)
	case *vsql.Begin:
		if s.tx != nil {
			return nil, fmt.Errorf("vertica: transaction already open")
		}
		s.tx = s.cluster.txm.Begin()
		return &Result{}, nil
	case *vsql.Commit:
		if s.tx == nil {
			return &Result{}, nil // COMMIT outside txn is a no-op
		}
		epoch, err := s.tx.Commit()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedCommit})
		return &Result{Epoch: epoch}, nil
	case *vsql.Rollback:
		if s.tx != nil {
			s.tx.Abort()
			s.tx = nil
		}
		return &Result{}, nil
	case *vsql.Copy:
		if st.FromStdin {
			return nil, fmt.Errorf("vertica: COPY FROM STDIN requires CopyFrom with a data stream")
		}
		return s.executeCopyFile(ctx, st)
	default:
		return nil, fmt.Errorf("vertica: unsupported statement %T", stmt)
	}
}

// CopyFrom runs a COPY ... FROM STDIN statement, reading the encoded data
// from r. This is the engine half of the VerticaCopyStream API (§3.2.2).
func (s *Session) CopyFrom(sql string, r io.Reader) (*Result, error) {
	return s.CopyFromContext(context.Background(), sql, r)
}

// CopyFromContext is CopyFrom with cancellation: cancelling ctx mid-stream
// fails the load, and with it the load's transaction — an explicit txn is
// left for the caller's ROLLBACK, an autocommit load writes nothing.
func (s *Session) CopyFromContext(ctx context.Context, sql string, r io.Reader) (*Result, error) {
	stmt, err := vsql.Parse(sql)
	if err != nil {
		return nil, err
	}
	cp, ok := stmt.(*vsql.Copy)
	if !ok {
		return nil, fmt.Errorf("vertica: CopyFrom requires a COPY statement, got %T", stmt)
	}
	if !cp.FromStdin {
		return nil, fmt.Errorf("vertica: CopyFrom requires COPY ... FROM STDIN")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.obsv = obs.From(ctx)
	s.peer = obs.Peer(ctx)
	s.sysStmt = false
	s.curTrace = obs.SpanContextFrom(ctx).TraceID
	s.stmtEvents = nil
	release, err := s.admit(ctx, "copy", copyMemEstimate)
	if err != nil {
		return nil, err
	}
	defer release()
	if ctx.Done() != nil {
		r = &ctxReader{ctx: ctx, r: r}
	}
	return s.executeCopyStream(ctx, cp, r)
}

// ctxReader fails the stream once its context is cancelled, so a COPY parse
// loop observes cancellation at its next read.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// txnForWrite returns the transaction to run a write under and whether it
// must be committed at statement end (autocommit).
func (s *Session) txnForWrite() (tx *txn.Txn, auto bool) {
	if s.tx != nil {
		return s.tx, false
	}
	return s.cluster.txm.Begin(), true
}

// finishWrite commits autocommit transactions and maps the result epoch.
func (s *Session) finishWrite(tx *txn.Txn, auto bool, res *Result) (*Result, error) {
	if !auto {
		return res, nil
	}
	epoch, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	res.Epoch = epoch
	s.maybeMoveout()
	return res, nil
}

// maybeMoveout triggers the tuple mover when WOS buffers grow past the
// configured threshold. Moveout respects the Ancient History Mark, so rows a
// pinned AT EPOCH reader can still see are never purged out from under it.
// On a durable cluster the moveout is a full checkpoint (persist containers,
// truncate the WAL).
func (s *Session) maybeMoveout() {
	limit := s.cluster.cfg.WOSMoveoutRows
	if limit <= 0 {
		return
	}
	over := false
	ahm := s.cluster.txm.AHM()
	for _, t := range s.cluster.cat.Tables() {
		for _, st := range t.Stores {
			if st.WOSLen() > limit {
				over = true
				if !s.cluster.durable() {
					_ = st.Moveout(ahm)
				}
			}
		}
	}
	if over && s.cluster.durable() {
		_ = s.cluster.Checkpoint()
	}
}

// record forwards a resource-usage event to the statement's observer; the
// sim.Recorder observer unwraps the payload into the cost trace.
func (s *Session) record(e sim.Event) {
	if s.obsv != nil {
		s.obsv.Event(obs.Event{Name: "sim", Node: s.node.Name, Payload: e})
	}
}

// vis returns the read context for the current statement: the open
// transaction's view, or a fresh read-committed snapshot.
func (s *Session) vis() visibility {
	if s.tx != nil {
		return visibility{v: s.tx.Vis()}
	}
	return visibility{v: snapshotVis(s.cluster)}
}
