package vertica

import (
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// systemTable synthesizes the virtual catalog/monitor tables the connector
// reads: node addresses (S2V looks up every node IP during setup, §3.2),
// segment boundaries (the hash-ring layout V2S partitions over, §3.1.2),
// table and column metadata, and storage statistics.
func (s *Session) systemTable(name string, vis storage.Visibility) ([]types.Row, types.Schema, error) {
	switch name {
	case "v_catalog.nodes":
		schema := types.NewSchema(
			types.Column{Name: "node_id", T: types.Int64},
			types.Column{Name: "node_name", T: types.Varchar},
			types.Column{Name: "node_address", T: types.Varchar},
			types.Column{Name: "node_state", T: types.Varchar},
		)
		var rows []types.Row
		for _, n := range s.cluster.nodeList() {
			st := n.State()
			if st == NodeRemoved {
				// Removed nodes are no longer part of the catalog; connectors
				// enumerating nodes must not plan queries against them.
				continue
			}
			rows = append(rows, types.Row{
				types.IntValue(int64(n.ID)),
				types.StringValue(n.Name),
				types.StringValue(n.Addr),
				types.StringValue(st.String()),
			})
		}
		return rows, schema, nil

	case "v_catalog.segments":
		schema := types.NewSchema(
			types.Column{Name: "table_name", T: types.Varchar},
			types.Column{Name: "node_id", T: types.Int64},
			types.Column{Name: "node_address", T: types.Varchar},
			types.Column{Name: "segment_lower_bound", T: types.Int64},
			types.Column{Name: "segment_upper_bound", T: types.Int64},
		)
		var rows []types.Row
		for _, t := range s.cluster.cat.Tables() {
			if !t.Def.Segmented {
				continue
			}
			// Segments follow the table's own ring, which may lag the
			// membership ring mid-drain; the rows here are authoritative for
			// planning against this table.
			segs := t.SegmentRanges()
			for i, r := range segs {
				nodeID := t.Ring[i]
				rows = append(rows, types.Row{
					types.StringValue(t.Def.Name),
					types.IntValue(int64(nodeID)),
					types.StringValue(s.cluster.node(nodeID).Addr),
					types.IntValue(int64(r.Lo)),
					types.IntValue(int64(r.Hi)),
				})
			}
		}
		return rows, schema, nil

	case "v_catalog.tables":
		schema := types.NewSchema(
			types.Column{Name: "table_name", T: types.Varchar},
			types.Column{Name: "is_segmented", T: types.Bool},
			types.Column{Name: "is_temp", T: types.Bool},
			types.Column{Name: "segment_expression", T: types.Varchar},
			types.Column{Name: "k_safety", T: types.Int64},
		)
		var rows []types.Row
		for _, t := range s.cluster.cat.Tables() {
			segExpr := ""
			if t.Def.Segmented {
				if len(t.Def.SegCols) == 0 {
					segExpr = "HASH(*)"
				} else {
					segExpr = "HASH("
					for i, c := range t.Def.SegCols {
						if i > 0 {
							segExpr += ", "
						}
						segExpr += c
					}
					segExpr += ")"
				}
			}
			rows = append(rows, types.Row{
				types.StringValue(t.Def.Name),
				types.BoolValue(t.Def.Segmented),
				types.BoolValue(t.Def.Temp),
				types.StringValue(segExpr),
				types.IntValue(int64(t.Def.KSafety)),
			})
		}
		return rows, schema, nil

	case "v_catalog.columns":
		schema := types.NewSchema(
			types.Column{Name: "table_name", T: types.Varchar},
			types.Column{Name: "column_name", T: types.Varchar},
			types.Column{Name: "data_type", T: types.Varchar},
			types.Column{Name: "ordinal_position", T: types.Int64},
		)
		var rows []types.Row
		for _, t := range s.cluster.cat.Tables() {
			for i, c := range t.Def.Schema.Cols {
				rows = append(rows, types.Row{
					types.StringValue(t.Def.Name),
					types.StringValue(c.Name),
					types.StringValue(c.T.String()),
					types.IntValue(int64(i + 1)),
				})
			}
		}
		return rows, schema, nil

	case "v_catalog.views":
		schema := types.NewSchema(
			types.Column{Name: "view_name", T: types.Varchar},
			types.Column{Name: "view_definition", T: types.Varchar},
		)
		var rows []types.Row
		for _, v := range s.cluster.cat.Views() {
			rows = append(rows, types.Row{
				types.StringValue(v.Name),
				types.StringValue(v.SelectSQL),
			})
		}
		return rows, schema, nil

	case "v_monitor.storage_containers":
		schema := types.NewSchema(
			types.Column{Name: "table_name", T: types.Varchar},
			types.Column{Name: "node_id", T: types.Int64},
			types.Column{Name: "ros_containers", T: types.Int64},
			types.Column{Name: "wos_rows", T: types.Int64},
			types.Column{Name: "visible_rows", T: types.Int64},
			types.Column{Name: "data_bytes", T: types.Int64},
		)
		var rows []types.Row
		for _, t := range s.cluster.cat.Tables() {
			for i, st := range t.Stores {
				rows = append(rows, types.Row{
					types.StringValue(t.Def.Name),
					types.IntValue(int64(t.Ring[i])),
					types.IntValue(int64(st.ContainerCount())),
					types.IntValue(int64(st.WOSLen())),
					types.IntValue(int64(st.RowCount(vis))),
					types.IntValue(int64(st.DataBytes())),
				})
			}
		}
		return rows, schema, nil

	case "v_monitor.dfs_files":
		schema := types.NewSchema(
			types.Column{Name: "path", T: types.Varchar},
			types.Column{Name: "size_bytes", T: types.Int64},
		)
		var rows []types.Row
		for _, fi := range s.cluster.dfs.List("") {
			rows = append(rows, types.Row{
				types.StringValue(fi.Path),
				types.IntValue(int64(fi.Size)),
			})
		}
		return rows, schema, nil

	default:
		// The observability tables live in monitor.go.
		return s.monitorTable(name, vis)
	}
}
