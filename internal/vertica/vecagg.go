package vertica

import (
	"fmt"
	"time"

	"vsfabric/internal/expr"
	"vsfabric/internal/sim"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vexec"
	"vsfabric/internal/vsql"
)

// This file pushes GROUP BY / aggregate queries over a single base table
// down into the vectorized pipeline: segment batches are filtered in
// parallel by the compiled predicate kernels (with zone-map container
// pruning), then consumed by one typed hash-aggregation table
// (vexec.HashAgg) sequentially in segment order — the same row order the
// row-at-a-time reference sees, so group discovery order and float
// accumulation order match it exactly.

// aggOpOf maps a SQL aggregate function to its kernel op.
func aggOpOf(fn vsql.AggFn) (vexec.AggOp, bool) {
	switch fn {
	case vsql.AggCount:
		return vexec.AggCount, true
	case vsql.AggSum:
		return vexec.AggSum, true
	case vsql.AggAvg:
		return vexec.AggAvg, true
	case vsql.AggMin:
		return vexec.AggMin, true
	case vsql.AggMax:
		return vexec.AggMax, true
	default:
		return 0, false
	}
}

// vectorAggEligible reports whether a SELECT's aggregation can run on the
// vectorized hash-aggregation kernels: a single base table (no joins, views,
// or system tables) with every aggregate argument a plain column. Anything
// else falls back to the row-at-a-time aggregate().
func vectorAggEligible(s *Session, st *vsql.Select) bool {
	if s.cluster.cfg.RowAtATimeScans {
		return false
	}
	if st.From == nil || len(st.Joins) > 0 {
		return false
	}
	if !hasAggregates(st) && len(st.GroupBy) == 0 {
		return false
	}
	if !baseTableOnly(s, st.From) {
		return false
	}
	tbl, ok := s.cluster.cat.Table(st.From.Name)
	if !ok {
		return false
	}
	plans, _, _, err := buildAggPlan(st, tbl.Def.Schema)
	if err != nil {
		return false
	}
	for _, pl := range plans {
		if pl.groupCol >= 0 {
			continue
		}
		if _, ok := aggOpOf(pl.agg); !ok {
			return false
		}
		if pl.arg == nil {
			continue // COUNT(*)
		}
		col, isCol := pl.arg.(*expr.Col)
		if !isCol || tbl.Def.Schema.ColIndex(col.Name) < 0 {
			return false
		}
	}
	return true
}

// tryVectorizedAgg answers an eligible GROUP BY / aggregate SELECT from the
// typed hash-aggregation kernels without materializing input rows. ok=false
// falls through to the general scan + aggregate() path (which reports any
// errors, so ineligibility is silent here).
func (s *Session) tryVectorizedAgg(st *vsql.Select, vis storage.Visibility, stats *scanStats, qp *queryProfile) (*Result, bool, error) {
	if !vectorAggEligible(s, st) {
		return nil, false, nil
	}
	// COUNT(*)-only queries already took the popcount pushdown upstream.
	tbl, ok := s.cluster.cat.Table(st.From.Name)
	if !ok {
		return nil, false, nil
	}
	schema := tbl.Def.Schema
	plans, groupIdx, outSchema, err := buildAggPlan(st, schema)
	if err != nil {
		return nil, false, nil
	}
	spec := vexec.AggSpec{GroupCols: groupIdx}
	aggIdx := make([]int, len(plans)) // plan item → index into spec.Aggs
	for i, pl := range plans {
		if pl.groupCol >= 0 {
			aggIdx[i] = -1
			continue
		}
		op, _ := aggOpOf(pl.agg)
		col := -1
		if pl.arg != nil {
			col = schema.ColIndex(pl.arg.(*expr.Col).Name)
		}
		aggIdx[i] = len(spec.Aggs)
		spec.Aggs = append(spec.Aggs, vexec.AggExpr{Op: op, Col: col})
	}

	stats.table = tbl.Def.Name
	stats.pushdown = "group-by"
	stats.vectorized = true
	scanStart := profClock(qp)
	profile := qp != nil
	hr, residual := extractHashRange(st.Where, tbl)
	pred := vexec.Compile(residual, schema, tbl.SegIdx)
	jobs, err := s.buildSegJobs(tbl, hr)
	if err != nil {
		return nil, false, err
	}

	// Parallel phase: build and filter every segment's batches. The batches
	// reference the containers' immutable column vectors, so holding them
	// until the sequential consume phase is free.
	type segBatches struct {
		segResult
		batches []*storage.Batch
	}
	results := make([]segBatches, len(jobs))
	runSegJobs(len(jobs), func(i int) {
		res := &results[i]
		res.scanRows = float64(jobs[i].store.TotalRows())
		var fs *vexec.FilterStats
		if profile {
			fs = &res.fstats
		}
		err := jobs[i].store.ScanBatchesPruned(vis, hr, s.pruneFunc(pred, &res.segResult), func(b *storage.Batch) bool {
			if err := pred.FilterBatchStats(b, fs); err != nil {
				res.err = err
				return false
			}
			if len(b.Sel) > 0 {
				res.batches = append(res.batches, b)
			}
			return true
		})
		if err != nil && res.err == nil {
			res.err = err
		}
	})

	// Sequential phase: one hash table consumes every batch in segment order.
	ha := vexec.NewHashAgg(spec, schema)
	var fstats vexec.FilterStats
	var scanned, contSeen, contNoStats int64
	for i := range results {
		res := &results[i]
		if res.err != nil {
			return nil, false, res.err
		}
		stats.scanRows[sim.VName(jobs[i].homeNode)] += res.scanRows
		scanned += int64(res.scanRows)
		fstats.KernelRows += res.fstats.KernelRows
		fstats.ResidualRows += res.fstats.ResidualRows
		stats.contScanned += res.contSeen - res.contPruned
		stats.contPruned += res.contPruned
		stats.contNoStats += res.contNoStats
		contSeen += res.contSeen
		contNoStats += res.contNoStats
		for _, b := range res.batches {
			ha.Consume(b)
		}
	}
	s.raiseZoneMapSkipped(tbl.Def.Name, pred.HasZoneChecks(), contNoStats, contSeen)

	out := make([]types.Row, 0, ha.NumGroups())
	for g := 0; g < ha.NumGroups(); g++ {
		key := ha.GroupKey(g)
		row := make(types.Row, len(plans))
		for i, pl := range plans {
			if pl.groupCol >= 0 {
				row[i] = key[pl.groupCol]
			} else {
				row[i] = ha.AggResult(g, aggIdx[i])
			}
		}
		out = append(out, row)
	}
	if len(st.OrderBy) > 0 {
		if err := orderRows(out, outSchema, st.OrderBy); err != nil {
			return nil, false, err
		}
	}
	if st.Limit >= 0 && int64(len(out)) > st.Limit {
		out = out[:st.Limit]
	}
	if qp != nil {
		detail := fmt.Sprintf("%d segments, %d kernels", len(jobs), pred.NumKernels())
		if stats.contPruned > 0 {
			detail += fmt.Sprintf(", zone maps pruned %d/%d containers", stats.contPruned, stats.contPruned+stats.contScanned)
		}
		qp.add(opStat{
			name: "scan " + tbl.Def.Name, rowsIn: scanned, rowsOut: ha.Rows(),
			vecRows: fstats.KernelRows, resRows: fstats.ResidualRows,
			dur: time.Since(scanStart), detail: detail,
		})
		grpStart := time.Now()
		qp.add(opStat{
			name: "group-by", rowsIn: ha.Rows(), rowsOut: int64(ha.NumGroups()),
			vecRows: ha.Rows() - ha.FallbackRows(), resRows: ha.FallbackRows(),
			dur:    grpStart.Sub(scanStart),
			detail: fmt.Sprintf("vectorized hash aggregation (%s keys), %d groups", ha.FastPath(), ha.NumGroups()),
		})
	}
	return &Result{Schema: outSchema, Rows: out}, true, nil
}
