package vertica

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"vsfabric/internal/expr"
	"vsfabric/internal/types"
	"vsfabric/internal/vsql"
)

// parseWhere extracts the WHERE expression from a SELECT over table t.
func parseWhere(t *testing.T, cond string) expr.Expr {
	t.Helper()
	if cond == "" {
		return nil
	}
	st, err := vsql.Parse("SELECT * FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	return st.(*vsql.Select).Where
}

// buildRandomTable fills table t with random rows (NULLs included), leaves a
// mix of ROS containers, deleted rows, and WOS rows behind, and returns the
// row count inserted.
func buildRandomTable(t *testing.T, s *Session, c *Cluster, rng *rand.Rand, n int) {
	t.Helper()
	s.MustExecute("CREATE TABLE t (id INTEGER, grp INTEGER, val FLOAT, name VARCHAR) SEGMENTED BY HASH(id)")
	names := []string{"alpha", "beta", "gamma", "delta", ""}
	insert := func(lo, hi int) {
		var vals []string
		for i := lo; i < hi; i++ {
			grp := fmt.Sprintf("%d", rng.Intn(10))
			if rng.Intn(10) == 0 {
				grp = "NULL"
			}
			val := fmt.Sprintf("%.2f", rng.Float64()*100)
			if rng.Intn(10) == 0 {
				val = "NULL"
			}
			vals = append(vals, fmt.Sprintf("(%d, %s, %s, '%s')", i, grp, val, names[rng.Intn(len(names))]))
		}
		s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
	}
	// First two thirds become ROS containers; deletes land on them; the rest
	// stays in WOS so every storage tier is exercised.
	insert(0, n/3)
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}
	insert(n/3, 2*n/3)
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}
	s.MustExecute("DELETE FROM t WHERE grp = 7")
	insert(2*n/3, n)
}

// TestScanTableMatchesRowAtATime is the end-to-end property test: the
// vectorized parallel scan must return exactly the rows, order included, of
// the retained row-at-a-time reference for a spread of predicates.
func TestScanTableMatchesRowAtATime(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	rng := rand.New(rand.NewSource(42))
	buildRandomTable(t, s, c, rng, 900)
	tbl, ok := c.Catalog().Table("t")
	if !ok {
		t.Fatal("table t missing")
	}
	vis := snapshotVis(c)
	preds := []string{
		"",
		"id < 100",
		"grp = 3",
		"100 <= id",
		"val > 50.0 AND grp <> 2",
		"grp IS NULL",
		"val IS NOT NULL AND name = 'beta'",
		"grp = 3 OR grp = 5",
		"NOT (grp = 3)",
		"name < 'c'",
		"id = -1",
		"HASH(id) >= 1000000",
		"HASH(id) < 2000000000 AND grp <= 4",
		"MOD(id, 2) = 0",
	}
	for _, cond := range preds {
		where := parseWhere(t, cond)
		wantRows, wantSchema, err := s.scanTableRowAtATime(tbl, where, vis, newScanStats())
		if err != nil {
			t.Fatalf("reference scan %q: %v", cond, err)
		}
		gotRows, _, gotSchema, err := s.scanTable(tbl, where, vis, newScanStats(), scanOpts{limit: -1})
		if err != nil {
			t.Fatalf("vectorized scan %q: %v", cond, err)
		}
		if len(gotSchema.Cols) != len(wantSchema.Cols) {
			t.Fatalf("%q: schema width %d vs %d", cond, len(gotSchema.Cols), len(wantSchema.Cols))
		}
		if len(gotRows) != len(wantRows) {
			t.Fatalf("%q: vectorized %d rows, reference %d", cond, len(gotRows), len(wantRows))
		}
		for i := range gotRows {
			for j := range gotRows[i] {
				if types.Compare(gotRows[i][j], wantRows[i][j]) != 0 {
					t.Fatalf("%q row %d: %v vs %v", cond, i, gotRows[i], wantRows[i])
				}
			}
		}
		// countOnly must agree with the materialized row count.
		_, count, _, err := s.scanTable(tbl, where, vis, newScanStats(), scanOpts{limit: -1, countOnly: true})
		if err != nil {
			t.Fatalf("count scan %q: %v", cond, err)
		}
		if count != int64(len(wantRows)) {
			t.Fatalf("%q: countOnly = %d, want %d", cond, count, len(wantRows))
		}
	}
}

func TestScanTableNeedCols(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, val FLOAT, name VARCHAR) SEGMENTED BY HASH(id)")
	s.MustExecute("INSERT INTO t VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, 3.5, 'c')")
	tbl, _ := c.Catalog().Table("t")
	vis := snapshotVis(c)
	rows, _, schema, err := s.scanTable(tbl, parseWhere(t, "val > 2.0"), vis,
		newScanStats(), scanOpts{limit: -1, needCols: []string{"name"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Cols) != 1 || schema.Cols[0].Name != "name" {
		t.Fatalf("narrowed schema = %v", schema.Cols)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if len(r) != 1 || r[0].T != types.Varchar {
			t.Fatalf("row %v not narrowed to name column", r)
		}
	}
	// Unresolvable names fall back to the full schema rather than failing.
	rows, _, schema, err = s.scanTable(tbl, nil, vis,
		newScanStats(), scanOpts{limit: -1, needCols: []string{"nope"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Cols) != 3 || len(rows) != 3 {
		t.Fatalf("fallback returned %d cols, %d rows", len(schema.Cols), len(rows))
	}
}

func TestLimitPushdown(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, grp INTEGER) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 500; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i%10))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))

	all := s.MustExecute("SELECT id FROM t WHERE grp = 3")
	limited := s.MustExecute("SELECT id FROM t WHERE grp = 3 LIMIT 7")
	if len(limited.Rows) != 7 {
		t.Fatalf("LIMIT 7 returned %d rows", len(limited.Rows))
	}
	// The limited result must be a prefix of the unlimited scan: same
	// deterministic merge order, truncated.
	for i, r := range limited.Rows {
		if r[0].I != all.Rows[i][0].I {
			t.Fatalf("LIMIT row %d = %v, unlimited prefix has %v", i, r, all.Rows[i])
		}
	}
	if res := s.MustExecute("SELECT id FROM t LIMIT 0"); len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
	// LIMIT must not truncate the scan when ORDER BY sorts the output...
	res := s.MustExecute("SELECT id FROM t ORDER BY id DESC LIMIT 3")
	if len(res.Rows) != 3 || res.Rows[0][0].I != 499 || res.Rows[2][0].I != 497 {
		t.Fatalf("ORDER BY ... LIMIT = %v", res.Rows)
	}
	// ...or when aggregates consume every row.
	res = s.MustExecute("SELECT COUNT(*) FROM t WHERE grp = 3 LIMIT 1")
	if v, _ := res.Value(); v.I != 50 {
		t.Fatalf("COUNT under LIMIT = %v", v)
	}
	res = s.MustExecute("SELECT grp, COUNT(*) FROM t GROUP BY grp LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("GROUP BY ... LIMIT 2 returned %d rows", len(res.Rows))
	}
}

func TestCountPushdown(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, grp INTEGER) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 300; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i%10))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}
	s.MustExecute("INSERT INTO t VALUES (300, 0), (301, 1)") // WOS rows
	s.MustExecute("DELETE FROM t WHERE id >= 290 AND id < 300")

	checks := []struct {
		sql  string
		want int64
	}{
		{"SELECT COUNT(*) FROM t", 292},
		{"SELECT COUNT(*) FROM t WHERE grp = 3", 29},
		{"SELECT COUNT(*) FROM t WHERE id < 0", 0},
		{"SELECT COUNT(*) AS n FROM t WHERE grp <= 1", 60},
	}
	for _, ck := range checks {
		res := s.MustExecute(ck.sql)
		v, err := res.Value()
		if err != nil || v.I != ck.want {
			t.Errorf("%s = %v (err %v), want %d", ck.sql, v, err, ck.want)
		}
	}
	// The aliased count keeps its alias as the output column name.
	res := s.MustExecute("SELECT COUNT(*) AS n FROM t")
	if res.Schema.Cols[0].Name != "n" {
		t.Errorf("aliased COUNT column = %q", res.Schema.Cols[0].Name)
	}
	res = s.MustExecute("SELECT COUNT(*) FROM t")
	if res.Schema.Cols[0].Name != "count" {
		t.Errorf("default COUNT column = %q", res.Schema.Cols[0].Name)
	}
	if res := s.MustExecute("SELECT COUNT(*) FROM t LIMIT 0"); len(res.Rows) != 0 {
		t.Errorf("COUNT ... LIMIT 0 returned rows")
	}
	// System-table counts take the regular path but must still be right.
	res = s.MustExecute("SELECT COUNT(*) FROM v_catalog.tables")
	if v, _ := res.Value(); v.I != 1 {
		t.Errorf("v_catalog.tables count = %v", v)
	}
}

// TestRowAtATimeScansKnob runs the same workload with the ablation knob on:
// results must be identical to the vectorized default.
func TestRowAtATimeScansKnob(t *testing.T) {
	run := func(rowAtATime bool) [][]types.Row {
		c, err := NewCluster(Config{Nodes: 3, RowAtATimeScans: rowAtATime})
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Connect(0)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.MustExecute("CREATE TABLE t (id INTEGER, grp INTEGER) SEGMENTED BY HASH(id)")
		var vals []string
		for i := 0; i < 200; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d)", i, i%7))
		}
		s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
		var out [][]types.Row
		for _, q := range []string{
			"SELECT id FROM t WHERE grp = 2",
			"SELECT COUNT(*) FROM t WHERE id >= 100",
			"SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp",
			"SELECT id FROM t WHERE grp = 5 LIMIT 4",
		} {
			out = append(out, s.MustExecute(q).Rows)
		}
		return out
	}
	vec, ref := run(false), run(true)
	for qi := range vec {
		if len(vec[qi]) != len(ref[qi]) {
			t.Fatalf("query %d: %d rows vectorized, %d row-at-a-time", qi, len(vec[qi]), len(ref[qi]))
		}
		for i := range vec[qi] {
			for j := range vec[qi][i] {
				if types.Compare(vec[qi][i][j], ref[qi][i][j]) != 0 {
					t.Fatalf("query %d row %d: %v vs %v", qi, i, vec[qi][i], ref[qi][i])
				}
			}
		}
	}
}

func TestHashJoinTypedKeys(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE a (k INTEGER, tag VARCHAR) SEGMENTED BY HASH(k)")
	s.MustExecute("CREATE TABLE b (k VARCHAR, note VARCHAR) SEGMENTED BY HASH(k)")
	s.MustExecute("INSERT INTO a VALUES (1, 'int-one')")
	s.MustExecute("INSERT INTO b VALUES ('1', 'string-one')")
	// INTEGER 1 and VARCHAR '1' are different values: no join output. (The
	// old string-rendered build keys made them collide.)
	res := s.MustExecute("SELECT a.tag, b.note FROM a JOIN b ON a.k = b.k")
	if len(res.Rows) != 0 {
		t.Fatalf("INTEGER joined VARCHAR: %v", res.Rows)
	}
	// INTEGER 1 and FLOAT 1.0 are equal per types.Compare: they must join.
	s.MustExecute("CREATE TABLE f (k FLOAT, note VARCHAR) SEGMENTED BY HASH(k)")
	s.MustExecute("INSERT INTO f VALUES (1.0, 'float-one'), (2.5, 'other')")
	res = s.MustExecute("SELECT a.tag, f.note FROM a JOIN f ON a.k = f.k")
	if len(res.Rows) != 1 || res.Rows[0][1].S != "float-one" {
		t.Fatalf("INTEGER vs FLOAT join = %v", res.Rows)
	}
	// NULL keys never join.
	s.MustExecute("INSERT INTO a VALUES (NULL, 'null-key')")
	s.MustExecute("INSERT INTO f VALUES (NULL, 'null-key')")
	res = s.MustExecute("SELECT a.tag, f.note FROM a JOIN f ON a.k = f.k")
	if len(res.Rows) != 1 {
		t.Fatalf("NULL keys joined: %v", res.Rows)
	}
}

// TestConcurrentScansAndDML hammers the vectorized scan path from several
// sessions while another session inserts, deletes, and moves out. Run under
// -race via make check.
func TestConcurrentScansAndDML(t *testing.T) {
	c := testCluster(t, 4)
	w := sess(t, c, 0)
	w.MustExecute("CREATE TABLE t (id INTEGER, grp INTEGER) SEGMENTED BY HASH(id)")
	var vals []string
	for i := 0; i < 1000; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i%10))
	}
	w.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			rs, err := c.Connect(node)
			if err != nil {
				t.Error(err)
				return
			}
			defer rs.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rs.Execute("SELECT id FROM t WHERE grp = 3"); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if _, err := rs.Execute("SELECT COUNT(*) FROM t WHERE id < 500"); err != nil {
					t.Errorf("reader count: %v", err)
					return
				}
			}
		}(r % c.NumNodes())
	}
	for i := 0; i < 30; i++ {
		w.MustExecute(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", 1000+i, i%10))
		w.MustExecute(fmt.Sprintf("DELETE FROM t WHERE id = %d", i*3))
		if i%10 == 0 {
			if err := c.Moveout(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
