package vexec

import (
	"encoding/binary"
	"math"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// This file implements vectorized hash aggregation over storage.Batch: group
// keys are resolved batch-at-a-time into dense group ordinals (an
// open-addressing table keyed by raw int64 for the single-int64-key fast
// path, run-at-a-time for RLE group columns, a byte-encoded key map
// otherwise), then each aggregate updates its typed accumulators in a tight
// per-column loop — values are boxed into types.Value only once per new
// group, never per input row. Accumulator semantics mirror the engine's
// row-at-a-time aggState exactly (null handling, int-vs-float SUM typing,
// first-seen MIN/MAX ties, AVG = float sum / non-null count), so the
// vectorized path is bit-for-bit equivalent to the reference and the two can
// be diffed by the equivalence property suite.

// AggOp is an aggregate function.
type AggOp int

const (
	AggCount AggOp = iota // COUNT(*) when Col < 0, COUNT(col) otherwise
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggExpr is one aggregate item: Op over the schema column Col. Col < 0 means
// COUNT(*) (count every selected row, null or not).
type AggExpr struct {
	Op  AggOp
	Col int
}

// AggSpec describes one GROUP BY pipeline: the schema indexes of the group
// key columns (empty = one global group) and the aggregate items.
type AggSpec struct {
	GroupCols []int
	Aggs      []AggExpr
}

// aggAcc is one (group, aggregate) accumulator. kind records the concrete
// type of the first non-null value so MIN/MAX finalize to the input type,
// exactly as the reference keeps typed values.
type aggAcc struct {
	count  int64
	sumF   float64
	sumI   int64
	intSum bool
	seen   bool
	kind   byte // 'i', 'f', 's', 'b'

	minI, maxI int64
	minF, maxF float64
	minS, maxS string
	minB, maxB bool
}

func (a *aggAcc) updateInt(v int64) {
	a.count++
	a.sumF += float64(v)
	if !a.seen {
		a.seen = true
		a.kind = 'i'
		a.intSum = true
		a.sumI = v
		a.minI, a.maxI = v, v
		return
	}
	a.sumI += v
	if v < a.minI {
		a.minI = v
	}
	if v > a.maxI {
		a.maxI = v
	}
}

func (a *aggAcc) updateFloat(v float64) {
	a.count++
	a.sumF += v
	if !a.seen {
		a.seen = true
		a.kind = 'f'
		a.minF, a.maxF = v, v
		return
	}
	a.intSum = false
	// Strict comparisons: a NaN bound is never displaced and a NaN value
	// never displaces, matching types.Compare's unordered-NaN behavior.
	if v < a.minF {
		a.minF = v
	}
	if v > a.maxF {
		a.maxF = v
	}
}

func (a *aggAcc) updateString(v string) {
	a.count++
	// The reference sums v.AsFloat() for every non-null value, which parses
	// varchars (NaN when unparsable); keep that — odd — behavior.
	a.sumF += types.Value{T: types.Varchar, S: v}.AsFloat()
	if !a.seen {
		a.seen = true
		a.kind = 's'
		a.minS, a.maxS = v, v
		return
	}
	a.intSum = false
	if v < a.minS {
		a.minS = v
	}
	if v > a.maxS {
		a.maxS = v
	}
}

func (a *aggAcc) updateBool(v bool) {
	a.count++
	if v {
		a.sumF++
	}
	if !a.seen {
		a.seen = true
		a.kind = 'b'
		a.minB, a.maxB = v, v
		return
	}
	a.intSum = false
	if !v {
		a.minB = false // false < true
	}
	if v {
		a.maxB = true
	}
}

// updateValue is the boxed fallback for a batch column whose concrete type
// doesn't match any typed loop (stored-type drift).
func (a *aggAcc) updateValue(v types.Value) {
	if v.Null {
		return
	}
	switch v.T {
	case types.Int64:
		a.updateInt(v.I)
	case types.Float64:
		a.updateFloat(v.F)
	case types.Varchar:
		a.updateString(v.S)
	case types.Bool:
		a.updateBool(v.B)
	}
}

func (a *aggAcc) result(op AggOp) types.Value {
	switch op {
	case AggCount:
		return types.IntValue(a.count)
	case AggSum:
		if !a.seen {
			return types.NullValue(types.Float64)
		}
		if a.intSum {
			return types.IntValue(a.sumI)
		}
		return types.FloatValue(a.sumF)
	case AggAvg:
		if a.count == 0 {
			return types.NullValue(types.Float64)
		}
		return types.FloatValue(a.sumF / float64(a.count))
	case AggMin:
		return a.minmax(true)
	case AggMax:
		return a.minmax(false)
	}
	return types.NullValue(types.Float64)
}

func (a *aggAcc) minmax(wantMin bool) types.Value {
	if !a.seen {
		return types.NullValue(types.Float64)
	}
	switch a.kind {
	case 'i':
		if wantMin {
			return types.IntValue(a.minI)
		}
		return types.IntValue(a.maxI)
	case 'f':
		if wantMin {
			return types.FloatValue(a.minF)
		}
		return types.FloatValue(a.maxF)
	case 's':
		if wantMin {
			return types.StringValue(a.minS)
		}
		return types.StringValue(a.maxS)
	case 'b':
		if wantMin {
			return types.BoolValue(a.minB)
		}
		return types.BoolValue(a.maxB)
	}
	return types.NullValue(types.Float64)
}

// HashAgg is a single-pass vectorized hash aggregator. It is used by a single
// goroutine: parallel segment scans feed batches to a coordinator that calls
// Consume in deterministic segment order, which keeps float SUM/AVG
// accumulation order identical to the sequential reference path.
type HashAgg struct {
	spec  AggSpec
	nAggs int

	// Single-int64-group-key fast path: an open-addressing table of group
	// ordinals (+1; 0 = empty slot) probed with the raw key, no boxing.
	fastInt      bool
	table        []int32
	mask         uint64
	intKeys      []int64 // group ordinal -> raw key (undefined for the null group)
	nullGrp      int32   // ordinal of the NULL-key group, -1 until seen
	allCountStar bool    // every aggregate is COUNT(*): enables run-counting on RLE keys

	byKey map[string]int32 // general path: byte-encoded key -> group ordinal

	keys []([]types.Value) // group ordinal -> boxed key values, first-seen order
	accs []aggAcc          // (group ordinal * nAggs + agg index)

	groupBuf []int32
	keyBuf   []byte

	rows         int64 // selected rows consumed
	fallbackRows int64 // rows that went through a boxed fallback loop
}

// NewHashAgg builds an aggregator for one query. schema is the batch schema
// the spec's column indexes refer to.
func NewHashAgg(spec AggSpec, schema types.Schema) *HashAgg {
	h := &HashAgg{spec: spec, nAggs: len(spec.Aggs), nullGrp: -1}
	h.fastInt = len(spec.GroupCols) == 1 &&
		spec.GroupCols[0] < len(schema.Cols) &&
		schema.Cols[spec.GroupCols[0]].T == types.Int64
	if h.fastInt {
		h.table = make([]int32, 64)
		h.mask = 63
	} else if len(spec.GroupCols) > 0 {
		h.byKey = make(map[string]int32)
	}
	h.allCountStar = len(spec.Aggs) > 0
	for _, a := range spec.Aggs {
		if a.Op != AggCount || a.Col >= 0 {
			h.allCountStar = false
		}
	}
	if len(spec.GroupCols) == 0 {
		// A global aggregate over zero rows still yields one row.
		h.newGroup(nil, 0)
	}
	return h
}

func (h *HashAgg) newGroup(keyVals []types.Value, intKey int64) int32 {
	g := int32(len(h.keys))
	h.keys = append(h.keys, keyVals)
	h.intKeys = append(h.intKeys, intKey)
	h.accs = append(h.accs, make([]aggAcc, h.nAggs)...)
	return g
}

func hashInt(k int64) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return h ^ (h >> 29)
}

// lookupInt returns the group ordinal for an int64 key, creating the group on
// first sight. Load is kept under 2/3 by doubling.
func (h *HashAgg) lookupInt(k int64) int32 {
	i := hashInt(k) & h.mask
	for {
		s := h.table[i]
		if s == 0 {
			g := h.newGroup([]types.Value{types.IntValue(k)}, k)
			h.table[i] = g + 1
			if uint64(len(h.keys))*3 >= (h.mask+1)*2 {
				h.growTable()
			}
			return g
		}
		if h.intKeys[s-1] == k {
			return s - 1
		}
		i = (i + 1) & h.mask
	}
}

func (h *HashAgg) growTable() {
	n := (h.mask + 1) * 2
	h.table = make([]int32, n)
	h.mask = n - 1
	for g, k := range h.intKeys {
		if int32(g) == h.nullGrp {
			continue
		}
		i := hashInt(k) & h.mask
		for h.table[i] != 0 {
			i = (i + 1) & h.mask
		}
		h.table[i] = int32(g) + 1
	}
}

func (h *HashAgg) nullGroup() int32 {
	if h.nullGrp < 0 {
		h.nullGrp = h.newGroup([]types.Value{types.NullValue(types.Int64)}, 0)
	}
	return h.nullGrp
}

// Consume folds one filtered batch into the aggregation state.
func (h *HashAgg) Consume(b *storage.Batch) {
	n := len(b.Sel)
	if n == 0 {
		return
	}
	h.rows += int64(n)
	if h.fastInt && h.allCountStar {
		if col, ok := b.Cols[h.spec.GroupCols[0]].(*storage.Int64RLEColumn); ok {
			// Popcount-style COUNT over an RLE group key: one table probe and
			// one addition per (run, sel-range) instead of per row.
			h.consumeRLECounts(col, b.Sel)
			return
		}
	}
	groupOf := h.groupBuf
	if cap(groupOf) < n {
		groupOf = make([]int32, n)
	}
	groupOf = groupOf[:n]
	h.groupBuf = groupOf
	h.resolveGroups(b, groupOf)
	for j := range h.spec.Aggs {
		h.updateAgg(b, j, groupOf)
	}
}

func (h *HashAgg) consumeRLECounts(col *storage.Int64RLEColumn, sel []int32) {
	run := 0
	end := int32(-1)
	var g int32
	var pending int64
	flush := func() {
		if pending == 0 {
			return
		}
		base := int(g) * h.nAggs
		for j := 0; j < h.nAggs; j++ {
			h.accs[base+j].count += pending
		}
		pending = 0
	}
	for _, i := range sel {
		if i >= end {
			flush()
			for run < len(col.RunEnds) && i >= col.RunEnds[run] {
				run++
			}
			end = col.RunEnds[run]
			g = h.lookupInt(col.RunVals[run])
		}
		pending++
	}
	flush()
}

// resolveGroups fills groupOf[k] with the group ordinal of selected row k.
func (h *HashAgg) resolveGroups(b *storage.Batch, groupOf []int32) {
	if len(h.spec.GroupCols) == 0 {
		for k := range groupOf {
			groupOf[k] = 0
		}
		return
	}
	if h.fastInt {
		gc := h.spec.GroupCols[0]
		switch col := b.Cols[gc].(type) {
		case *storage.Int64Column:
			if col.Nulls == nil {
				for k, i := range b.Sel {
					groupOf[k] = h.lookupInt(col.Vals[i])
				}
			} else {
				for k, i := range b.Sel {
					if col.Nulls[i] {
						groupOf[k] = h.nullGroup()
					} else {
						groupOf[k] = h.lookupInt(col.Vals[i])
					}
				}
			}
		case *storage.Int64RLEColumn:
			// Run-at-a-time: one table probe per run boundary, not per row.
			run := 0
			end := int32(-1)
			var g int32
			for k, i := range b.Sel {
				if i >= end {
					for run < len(col.RunEnds) && i >= col.RunEnds[run] {
						run++
					}
					end = col.RunEnds[run]
					g = h.lookupInt(col.RunVals[run])
				}
				groupOf[k] = g
			}
		default:
			// Stored-type drift on a schema-int column: box, but keep the
			// int key table so equal keys still land in one group.
			h.fallbackRows += int64(len(b.Sel))
			for k, i := range b.Sel {
				v := b.Cols[gc].Get(int(i))
				if v.Null {
					groupOf[k] = h.nullGroup()
				} else {
					groupOf[k] = h.lookupInt(v.AsInt())
				}
			}
		}
		return
	}
	h.resolveGeneric(b, groupOf)
}

// resolveGeneric handles multi-column and non-int group keys by encoding each
// key into a compact byte string (type-tagged, length-prefixed — no separator
// ambiguity, NULL distinct from any value) and interning it in a map.
func (h *HashAgg) resolveGeneric(b *storage.Batch, groupOf []int32) {
	buf := h.keyBuf
	for k, i := range b.Sel {
		buf = h.appendKey(buf[:0], b, int(i))
		g, ok := h.byKey[string(buf)]
		if !ok {
			vals := make([]types.Value, len(h.spec.GroupCols))
			for x, gc := range h.spec.GroupCols {
				vals[x] = b.Cols[gc].Get(int(i))
			}
			g = h.newGroup(vals, 0)
			h.byKey[string(buf)] = g
		}
		groupOf[k] = g
	}
	h.keyBuf = buf
}

func (h *HashAgg) appendKey(buf []byte, b *storage.Batch, i int) []byte {
	for _, gc := range h.spec.GroupCols {
		col := b.Cols[gc]
		switch c := col.(type) {
		case *storage.Int64Column:
			if c.Nulls != nil && c.Nulls[i] {
				buf = append(buf, 0)
				continue
			}
			buf = appendKeyInt(buf, c.Vals[i])
		case *storage.Int64RLEColumn:
			buf = appendKeyInt(buf, c.RunVals[c.RunOf(i)])
		case *storage.Float64Column:
			if c.Nulls != nil && c.Nulls[i] {
				buf = append(buf, 0)
				continue
			}
			buf = appendKeyFloat(buf, c.Vals[i])
		case *storage.StringColumn:
			if c.Nulls != nil && c.Nulls[i] {
				buf = append(buf, 0)
				continue
			}
			buf = appendKeyString(buf, c.Vals[i])
		case *storage.BoolColumn:
			if c.Nulls != nil && c.Nulls[i] {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 4, b2b(c.Vals[i]))
		default:
			v := col.Get(i)
			switch {
			case v.Null:
				buf = append(buf, 0)
			case v.T == types.Int64:
				buf = appendKeyInt(buf, v.I)
			case v.T == types.Float64:
				buf = appendKeyFloat(buf, v.F)
			case v.T == types.Varchar:
				buf = appendKeyString(buf, v.S)
			case v.T == types.Bool:
				buf = append(buf, 4, b2b(v.B))
			default:
				buf = append(buf, 5)
			}
		}
	}
	return buf
}

func appendKeyInt(buf []byte, v int64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(v))
	return append(append(buf, 1), tmp[:]...)
}

func appendKeyFloat(buf []byte, v float64) []byte {
	bits := math.Float64bits(v)
	if v != v {
		// All NaN payloads group together, as the reference's string-rendered
		// keys do. -0.0 and +0.0 stay distinct, also like the reference.
		bits = math.Float64bits(math.NaN())
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], bits)
	return append(append(buf, 2), tmp[:]...)
}

func appendKeyString(buf []byte, v string) []byte {
	buf = append(buf, 3)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(v)))
	buf = append(buf, tmp[:n]...)
	return append(buf, v...)
}

func b2b(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// updateAgg runs aggregate j's typed update loop over the batch.
func (h *HashAgg) updateAgg(b *storage.Batch, j int, groupOf []int32) {
	ae := h.spec.Aggs[j]
	if ae.Col < 0 {
		// COUNT(*): every selected row counts, null or not.
		for k := range b.Sel {
			h.accs[int(groupOf[k])*h.nAggs+j].count++
		}
		return
	}
	switch col := b.Cols[ae.Col].(type) {
	case *storage.Int64Column:
		if col.Nulls == nil {
			for k, i := range b.Sel {
				h.accs[int(groupOf[k])*h.nAggs+j].updateInt(col.Vals[i])
			}
		} else {
			for k, i := range b.Sel {
				if !col.Nulls[i] {
					h.accs[int(groupOf[k])*h.nAggs+j].updateInt(col.Vals[i])
				}
			}
		}
	case *storage.Int64RLEColumn:
		run := 0
		end := int32(-1)
		var v int64
		for k, i := range b.Sel {
			if i >= end {
				for run < len(col.RunEnds) && i >= col.RunEnds[run] {
					run++
				}
				end = col.RunEnds[run]
				v = col.RunVals[run]
			}
			h.accs[int(groupOf[k])*h.nAggs+j].updateInt(v)
		}
	case *storage.Float64Column:
		for k, i := range b.Sel {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			h.accs[int(groupOf[k])*h.nAggs+j].updateFloat(col.Vals[i])
		}
	case *storage.StringColumn:
		for k, i := range b.Sel {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			h.accs[int(groupOf[k])*h.nAggs+j].updateString(col.Vals[i])
		}
	case *storage.BoolColumn:
		for k, i := range b.Sel {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			h.accs[int(groupOf[k])*h.nAggs+j].updateBool(col.Vals[i])
		}
	default:
		h.fallbackRows += int64(len(b.Sel))
		for k, i := range b.Sel {
			h.accs[int(groupOf[k])*h.nAggs+j].updateValue(col.Get(int(i)))
		}
	}
}

// NumGroups returns the number of groups, in first-seen order — the same
// order the reference's insertion-ordered map produces.
func (h *HashAgg) NumGroups() int { return len(h.keys) }

// GroupKey returns group g's boxed key values (nil for the global group).
func (h *HashAgg) GroupKey(g int) []types.Value { return h.keys[g] }

// AggResult finalizes aggregate j of group g.
func (h *HashAgg) AggResult(g, j int) types.Value {
	return h.accs[g*h.nAggs+j].result(h.spec.Aggs[j].Op)
}

// Rows returns the number of selected input rows consumed.
func (h *HashAgg) Rows() int64 { return h.rows }

// FallbackRows returns how many of those rows went through a boxed fallback
// loop instead of a typed kernel (profiling: kernel-vs-fallback split).
func (h *HashAgg) FallbackRows() int64 { return h.fallbackRows }

// FastPath names the group-key strategy for profile output.
func (h *HashAgg) FastPath() string {
	switch {
	case len(h.spec.GroupCols) == 0:
		return "global"
	case h.fastInt:
		return "int64"
	default:
		return "generic"
	}
}
