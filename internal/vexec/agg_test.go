package vexec

import (
	"testing"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

func i64(v int64) types.Value   { return types.IntValue(v) }
func f64(v float64) types.Value { return types.FloatValue(v) }
func str(v string) types.Value  { return types.StringValue(v) }

func wantValue(t *testing.T, got, want types.Value, what string) {
	t.Helper()
	if got.Null != want.Null || (!got.Null && (got.T != want.T || types.Compare(got, want) != 0)) {
		t.Fatalf("%s = %v (T=%v null=%v), want %v (T=%v null=%v)",
			what, got, got.T, got.Null, want, want.T, want.Null)
	}
}

func TestHashAggInt64FastPath(t *testing.T) {
	schema := intSchema()
	b := mkBatch(t, schema, []types.Row{
		{i64(1), f64(1.5), str("a"), types.BoolValue(true)},
		{i64(2), f64(2.0), str("b"), types.BoolValue(true)},
		{i64(1), f64(2.5), str("c"), types.BoolValue(true)},
		{types.NullValue(types.Int64), f64(10.0), str("d"), types.BoolValue(true)},
		{i64(2), types.NullValue(types.Float64), str("e"), types.BoolValue(true)},
	})
	spec := AggSpec{
		GroupCols: []int{0},
		Aggs: []AggExpr{
			{Op: AggCount, Col: -1}, // COUNT(*)
			{Op: AggSum, Col: 1},
			{Op: AggMin, Col: 1},
			{Op: AggAvg, Col: 1},
		},
	}
	h := NewHashAgg(spec, schema)
	if h.FastPath() != "int64" {
		t.Fatalf("fast path = %q, want int64", h.FastPath())
	}
	h.Consume(b)
	if h.NumGroups() != 3 {
		t.Fatalf("groups = %d, want 3", h.NumGroups())
	}
	// First-seen group order: 1, 2, NULL.
	wantValue(t, h.GroupKey(0)[0], i64(1), "key[0]")
	wantValue(t, h.GroupKey(1)[0], i64(2), "key[1]")
	wantValue(t, h.GroupKey(2)[0], types.NullValue(types.Int64), "key[2]")

	wantValue(t, h.AggResult(0, 0), i64(2), "g1 count")
	wantValue(t, h.AggResult(0, 1), f64(4.0), "g1 sum")
	wantValue(t, h.AggResult(0, 2), f64(1.5), "g1 min")
	wantValue(t, h.AggResult(0, 3), f64(2.0), "g1 avg")

	wantValue(t, h.AggResult(1, 0), i64(2), "g2 count")
	wantValue(t, h.AggResult(1, 1), f64(2.0), "g2 sum") // NULL input skipped
	wantValue(t, h.AggResult(1, 3), f64(2.0), "g2 avg") // / 1 non-null, not / 2

	wantValue(t, h.AggResult(2, 0), i64(1), "null-key count")
	wantValue(t, h.AggResult(2, 1), f64(10.0), "null-key sum")

	if h.Rows() != 5 || h.FallbackRows() != 0 {
		t.Fatalf("rows=%d fallback=%d", h.Rows(), h.FallbackRows())
	}
}

func TestHashAggIntSumStaysInt(t *testing.T) {
	schema := intSchema()
	b := mkBatch(t, schema, []types.Row{
		{i64(5), f64(0), str(""), types.BoolValue(false)},
		{i64(7), f64(0), str(""), types.BoolValue(false)},
	})
	h := NewHashAgg(AggSpec{Aggs: []AggExpr{
		{Op: AggSum, Col: 0},
		{Op: AggMax, Col: 0},
		{Op: AggCount, Col: 0},
	}}, schema)
	h.Consume(b)
	wantValue(t, h.AggResult(0, 0), i64(12), "sum(int)")
	wantValue(t, h.AggResult(0, 1), i64(7), "max(int)")
	wantValue(t, h.AggResult(0, 2), i64(2), "count(int)")
}

func TestHashAggGenericKeys(t *testing.T) {
	schema := intSchema()
	// GROUP BY (s, x): a string "NULL" must stay distinct from a NULL key.
	b := mkBatch(t, schema, []types.Row{
		{i64(1), f64(1), str("NULL"), types.BoolValue(false)},
		{i64(1), f64(2), types.NullValue(types.Varchar), types.BoolValue(false)},
		{i64(1), f64(3), str("NULL"), types.BoolValue(false)},
	})
	h := NewHashAgg(AggSpec{
		GroupCols: []int{2, 0},
		Aggs:      []AggExpr{{Op: AggSum, Col: 1}},
	}, schema)
	if h.FastPath() != "generic" {
		t.Fatalf("fast path = %q, want generic", h.FastPath())
	}
	h.Consume(b)
	if h.NumGroups() != 2 {
		t.Fatalf("groups = %d, want 2 (\"NULL\" and NULL collided?)", h.NumGroups())
	}
	wantValue(t, h.GroupKey(0)[0], str("NULL"), "g0 key")
	wantValue(t, h.GroupKey(1)[0], types.NullValue(types.Varchar), "g1 key")
	wantValue(t, h.AggResult(0, 0), f64(4), "g0 sum")
	wantValue(t, h.AggResult(1, 0), f64(2), "g1 sum")
}

func TestHashAggEmptyGlobalGroup(t *testing.T) {
	schema := intSchema()
	h := NewHashAgg(AggSpec{Aggs: []AggExpr{
		{Op: AggCount, Col: -1},
		{Op: AggSum, Col: 0},
		{Op: AggMin, Col: 2},
	}}, schema)
	// Zero batches consumed: a global aggregate still yields one row.
	if h.NumGroups() != 1 {
		t.Fatalf("groups = %d, want 1", h.NumGroups())
	}
	if h.FastPath() != "global" {
		t.Fatalf("fast path = %q, want global", h.FastPath())
	}
	wantValue(t, h.AggResult(0, 0), i64(0), "count over nothing")
	if !h.AggResult(0, 1).Null || !h.AggResult(0, 2).Null {
		t.Fatalf("sum/min over nothing should be NULL: %v %v", h.AggResult(0, 1), h.AggResult(0, 2))
	}
}

func TestHashAggRLECountStar(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "k", T: types.Int64})
	rle := &storage.Int64RLEColumn{RunEnds: []int32{3, 5}, RunVals: []int64{7, 9}}
	full := &storage.Batch{
		Schema: schema, Cols: []storage.Column{rle},
		Sel: []int32{0, 1, 2, 3, 4},
	}
	h := NewHashAgg(AggSpec{
		GroupCols: []int{0},
		Aggs:      []AggExpr{{Op: AggCount, Col: -1}},
	}, schema)
	h.Consume(full)
	if h.NumGroups() != 2 {
		t.Fatalf("groups = %d, want 2", h.NumGroups())
	}
	wantValue(t, h.GroupKey(0)[0], i64(7), "g0 key")
	wantValue(t, h.AggResult(0, 0), i64(3), "count(7)")
	wantValue(t, h.AggResult(1, 0), i64(2), "count(9)")

	// A narrowed selection vector must count only selected rows per run.
	h2 := NewHashAgg(AggSpec{
		GroupCols: []int{0},
		Aggs:      []AggExpr{{Op: AggCount, Col: -1}},
	}, schema)
	h2.Consume(&storage.Batch{Schema: schema, Cols: []storage.Column{rle}, Sel: []int32{1, 2, 4}})
	wantValue(t, h2.AggResult(0, 0), i64(2), "count(7) under sel")
	wantValue(t, h2.AggResult(1, 0), i64(1), "count(9) under sel")
}

func TestHashAggManyGroupsGrowsTable(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "k", T: types.Int64})
	rows := make([]types.Row, 1000)
	for i := range rows {
		rows[i] = types.Row{i64(int64(i % 300))}
	}
	b := mkBatch(t, schema, rows)
	h := NewHashAgg(AggSpec{
		GroupCols: []int{0},
		Aggs:      []AggExpr{{Op: AggCount, Col: -1}},
	}, schema)
	h.Consume(b)
	h.Consume(b)
	if h.NumGroups() != 300 {
		t.Fatalf("groups = %d, want 300", h.NumGroups())
	}
	for g := 0; g < 300; g++ {
		// First-seen order means group g has key g even after table growth.
		wantValue(t, h.GroupKey(g)[0], i64(int64(g)), "grown-table key")
	}
	// Per batch, keys 0..99 appear 4 times and 100..299 appear 3 times.
	wantValue(t, h.AggResult(0, 0), i64(8), "count(0) after two batches")
	wantValue(t, h.AggResult(299, 0), i64(6), "count(299) after two batches")
}
