package vexec

import (
	"math"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// This file implements the vectorized hash join: the build side's key table
// is populated straight from column vectors (a map keyed by raw int64 when
// every build batch stores the key column as an int vector, a typed JoinKey
// map otherwise) and the probe side reads its keys from vectors too — rows
// are boxed into types.Row only for matching pairs, by the caller's emit
// function. Key semantics are the engine's typed join keys: NULL never
// matches, INTEGER matches integral FLOAT, no cross-family collisions.

// JoinKey is a typed, comparable hash-join key, identical in semantics to
// the engine's row-path key so both execution paths join exactly the same
// pairs.
type JoinKey struct {
	kind byte // 'i' integral numeric, 'f' non-integral float, 's' string, 'b' bool
	i    int64
	f    float64
	s    string
	b    bool
}

// JoinKeyOf builds the key for a boxed value; ok is false for NULLs (which
// never join).
func JoinKeyOf(v types.Value) (JoinKey, bool) {
	if v.Null {
		return JoinKey{}, false
	}
	switch v.T {
	case types.Int64:
		return JoinKey{kind: 'i', i: v.I}, true
	case types.Float64:
		return floatJoinKey(v.F), true
	case types.Varchar:
		return JoinKey{kind: 's', s: v.S}, true
	case types.Bool:
		return JoinKey{kind: 'b', b: v.B}, true
	default:
		return JoinKey{}, false
	}
}

// floatJoinKey normalizes integral floats to the int form so 1.0 matches
// INTEGER 1, mirroring types.Compare's numeric promotion; magnitudes beyond
// the int64-exact range stay in float form.
func floatJoinKey(f float64) JoinKey {
	if f == math.Trunc(f) && f >= -(1<<62) && f <= 1<<62 {
		return JoinKey{kind: 'i', i: int64(f)}
	}
	return JoinKey{kind: 'f', f: f}
}

// joinKeyAt extracts the key of physical row i from a column vector without
// boxing (typed fast paths; boxed fallback for drifted column types).
func joinKeyAt(col storage.Column, i int) (JoinKey, bool) {
	switch c := col.(type) {
	case *storage.Int64Column:
		if c.Nulls != nil && c.Nulls[i] {
			return JoinKey{}, false
		}
		return JoinKey{kind: 'i', i: c.Vals[i]}, true
	case *storage.Int64RLEColumn:
		return JoinKey{kind: 'i', i: c.RunVals[c.RunOf(i)]}, true
	case *storage.Float64Column:
		if c.Nulls != nil && c.Nulls[i] {
			return JoinKey{}, false
		}
		return floatJoinKey(c.Vals[i]), true
	case *storage.StringColumn:
		if c.Nulls != nil && c.Nulls[i] {
			return JoinKey{}, false
		}
		return JoinKey{kind: 's', s: c.Vals[i]}, true
	case *storage.BoolColumn:
		if c.Nulls != nil && c.Nulls[i] {
			return JoinKey{}, false
		}
		return JoinKey{kind: 'b', b: c.Vals[i]}, true
	default:
		return JoinKeyOf(col.Get(i))
	}
}

// pairRef locates one row: batch index within a batch set, physical row.
type pairRef struct{ b, r int32 }

// joinTable is the build side: key -> build-row ordinals (dense, in build
// scan order), with refs mapping ordinals back to (batch, row).
type joinTable struct {
	intMap map[int64][]int32 // set when every build batch stores int64 keys
	genMap map[JoinKey][]int32
	refs   []pairRef
}

func buildJoinTable(batches []*storage.Batch, keyCol int) *joinTable {
	t := &joinTable{}
	intKind := true
	total := 0
	for _, b := range batches {
		total += len(b.Sel)
		switch b.Cols[keyCol].(type) {
		case *storage.Int64Column, *storage.Int64RLEColumn:
		default:
			intKind = false
		}
	}
	t.refs = make([]pairRef, 0, total)
	if intKind {
		t.intMap = make(map[int64][]int32, total)
		for bi, b := range batches {
			switch col := b.Cols[keyCol].(type) {
			case *storage.Int64Column:
				for _, i := range b.Sel {
					if col.Nulls != nil && col.Nulls[i] {
						continue
					}
					t.addInt(col.Vals[i], int32(bi), i)
				}
			case *storage.Int64RLEColumn:
				run := 0
				end := int32(-1)
				var v int64
				for _, i := range b.Sel {
					if i >= end {
						for run < len(col.RunEnds) && i >= col.RunEnds[run] {
							run++
						}
						end = col.RunEnds[run]
						v = col.RunVals[run]
					}
					t.addInt(v, int32(bi), i)
				}
			}
		}
		return t
	}
	t.genMap = make(map[JoinKey][]int32, total)
	for bi, b := range batches {
		col := b.Cols[keyCol]
		for _, i := range b.Sel {
			k, ok := joinKeyAt(col, int(i))
			if !ok {
				continue
			}
			ord := int32(len(t.refs))
			t.refs = append(t.refs, pairRef{int32(bi), i})
			t.genMap[k] = append(t.genMap[k], ord)
		}
	}
	return t
}

func (t *joinTable) addInt(v int64, b, r int32) {
	ord := int32(len(t.refs))
	t.refs = append(t.refs, pairRef{b, r})
	t.intMap[v] = append(t.intMap[v], ord)
}

// lookup returns the build ordinals matching key k of the probe column at
// physical row i (nil slice when no match or the probe key is NULL).
func (t *joinTable) lookup(col storage.Column, i int) []int32 {
	if t.intMap != nil {
		// Int build keys: int and integral-float probes can match; strings
		// and bools never do.
		switch c := col.(type) {
		case *storage.Int64Column:
			if c.Nulls != nil && c.Nulls[i] {
				return nil
			}
			return t.intMap[c.Vals[i]]
		case *storage.Int64RLEColumn:
			return t.intMap[c.RunVals[c.RunOf(i)]]
		case *storage.Float64Column:
			if c.Nulls != nil && c.Nulls[i] {
				return nil
			}
			if k := floatJoinKey(c.Vals[i]); k.kind == 'i' {
				return t.intMap[k.i]
			}
			return nil
		default:
			k, ok := joinKeyAt(col, i)
			if !ok || k.kind != 'i' {
				return nil
			}
			return t.intMap[k.i]
		}
	}
	k, ok := joinKeyAt(col, i)
	if !ok {
		return nil
	}
	return t.genMap[k]
}

// JoinBatches hash-joins two batch sets on the given key columns, calling
// emit once per matching (left, right) pair in left-major order: left rows in
// scan order, each paired with its right matches in right scan order — the
// same order whichever side the hash table is built on, so the planner's
// build-side choice never changes result order. buildLeft picks the build
// side (build the smaller relation, probe the larger).
func JoinBatches(left []*storage.Batch, lcol int, right []*storage.Batch, rcol int, buildLeft bool, emit func(lb, lr, rb, rr int32)) {
	if !buildLeft {
		t := buildJoinTable(right, rcol)
		if len(t.refs) == 0 {
			return
		}
		for bi, b := range left {
			col := b.Cols[lcol]
			for _, i := range b.Sel {
				for _, ord := range t.lookup(col, int(i)) {
					ref := t.refs[ord]
					emit(int32(bi), i, ref.b, ref.r)
				}
			}
		}
		return
	}
	// Build on the left: probe right rows into per-left-ordinal buckets, then
	// walk build ordinals (— left scan order —) to emit left-major.
	t := buildJoinTable(left, lcol)
	if len(t.refs) == 0 {
		return
	}
	buckets := make([][]pairRef, len(t.refs))
	matched := false
	for bi, b := range right {
		col := b.Cols[rcol]
		for _, i := range b.Sel {
			for _, ord := range t.lookup(col, int(i)) {
				buckets[ord] = append(buckets[ord], pairRef{int32(bi), i})
				matched = true
			}
		}
	}
	if !matched {
		return
	}
	for ord, ref := range t.refs {
		for _, pr := range buckets[ord] {
			emit(ref.b, ref.r, pr.b, pr.r)
		}
	}
}
