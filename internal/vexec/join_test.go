package vexec

import (
	"reflect"
	"testing"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

type emitted struct{ lb, lr, rb, rr int32 }

func collectJoin(left []*storage.Batch, lcol int, right []*storage.Batch, rcol int, buildLeft bool) []emitted {
	var out []emitted
	JoinBatches(left, lcol, right, rcol, buildLeft, func(lb, lr, rb, rr int32) {
		out = append(out, emitted{lb, lr, rb, rr})
	})
	return out
}

func idBatch(t *testing.T, ids ...types.Value) *storage.Batch {
	t.Helper()
	schema := types.NewSchema(types.Column{Name: "id", T: ids[0].T})
	rows := make([]types.Row, len(ids))
	for i, v := range ids {
		rows[i] = types.Row{v}
	}
	return mkBatch(t, schema, rows)
}

func TestJoinBatchesIntKeysBuildSideInvariant(t *testing.T) {
	// Left ids: [1, 2, 2, NULL, 3] across two batches; right: [2, 2, 3, NULL, 5].
	left := []*storage.Batch{
		idBatch(t, i64(1), i64(2), i64(2)),
		idBatch(t, types.NullValue(types.Int64), i64(3)),
	}
	right := []*storage.Batch{idBatch(t, i64(2), i64(2), i64(3), types.NullValue(types.Int64), i64(5))}

	want := []emitted{
		{0, 1, 0, 0}, {0, 1, 0, 1}, // left row (0,1)=2 matches right rows 0,1
		{0, 2, 0, 0}, {0, 2, 0, 1}, // left row (0,2)=2
		{1, 1, 0, 2}, // left row (1,1)=3 matches right row 2; NULLs never join
	}
	probeRight := collectJoin(left, 0, right, 0, false)
	if !reflect.DeepEqual(probeRight, want) {
		t.Fatalf("build right:\n got %v\nwant %v", probeRight, want)
	}
	// Building the left side instead must emit the identical left-major
	// sequence — build-side choice is a cost decision, not a semantic one.
	buildLeft := collectJoin(left, 0, right, 0, true)
	if !reflect.DeepEqual(buildLeft, want) {
		t.Fatalf("build left:\n got %v\nwant %v", buildLeft, want)
	}
}

func TestJoinBatchesGenericKeys(t *testing.T) {
	left := []*storage.Batch{idBatch(t, str("a"), str("b"), types.NullValue(types.Varchar))}
	right := []*storage.Batch{idBatch(t, str("b"), str("b"), str("c"))}
	want := []emitted{{0, 1, 0, 0}, {0, 1, 0, 1}}
	for _, bl := range []bool{false, true} {
		got := collectJoin(left, 0, right, 0, bl)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("buildLeft=%v:\n got %v\nwant %v", bl, got, want)
		}
	}
}

func TestJoinBatchesFloatIntNormalization(t *testing.T) {
	// 2.0 joins the integer 2; 2.5 joins nothing.
	left := []*storage.Batch{idBatch(t, f64(2.0), f64(2.5))}
	right := []*storage.Batch{idBatch(t, i64(2), i64(3))}
	want := []emitted{{0, 0, 0, 0}}
	for _, bl := range []bool{false, true} {
		got := collectJoin(left, 0, right, 0, bl)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("buildLeft=%v:\n got %v\nwant %v", bl, got, want)
		}
	}
}

func TestJoinBatchesEmptySides(t *testing.T) {
	b := idBatch(t, i64(1))
	if got := collectJoin(nil, 0, []*storage.Batch{b}, 0, false); got != nil {
		t.Fatalf("empty left joined: %v", got)
	}
	if got := collectJoin([]*storage.Batch{b}, 0, nil, 0, true); got != nil {
		t.Fatalf("empty right joined: %v", got)
	}
}

func TestJoinBatchesRespectsSelection(t *testing.T) {
	// A narrowed selection vector on either side excludes unselected rows.
	left := []*storage.Batch{idBatch(t, i64(1), i64(2), i64(3))}
	left[0].Sel = []int32{0, 2}
	right := []*storage.Batch{idBatch(t, i64(2), i64(3))}
	want := []emitted{{0, 2, 0, 1}}
	for _, bl := range []bool{false, true} {
		got := collectJoin(left, 0, right, 0, bl)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("buildLeft=%v:\n got %v\nwant %v", bl, got, want)
		}
	}
}

func TestJoinKeyOf(t *testing.T) {
	if _, ok := JoinKeyOf(types.NullValue(types.Int64)); ok {
		t.Fatal("NULL should produce no join key")
	}
	ik, _ := JoinKeyOf(i64(2))
	fk, _ := JoinKeyOf(f64(2.0))
	if ik != fk {
		t.Fatalf("2 and 2.0 keys differ: %v vs %v", ik, fk)
	}
	fk2, _ := JoinKeyOf(f64(2.5))
	if ik == fk2 {
		t.Fatal("2 and 2.5 keys collide")
	}
}
