// Package vexec compiles WHERE-clause predicates into typed kernels that run
// over columnar batches without boxing values through types.Value — the
// MonetDB/X100-style vectorized execution layer under the SQL engine's scan
// path. A predicate is split into conjuncts; each conjunct that matches a
// recognized shape (column CMP literal, IS [NOT] NULL, bare boolean column,
// HASH(segcols) CMP literal) is lowered to a tight loop over the concrete
// column vector, with a fast path that evaluates RLE-compressed int columns
// run-by-run without decoding. Conjuncts that don't lower fall back to the
// interpreted expr.EvalPredicate as a residual, so any predicate the
// interpreter accepts runs unchanged — just slower.
//
// Kernel semantics follow SQL three-valued logic exactly as the interpreter
// applies it to a WHERE clause: a conjunct keeps a row only when it
// evaluates to non-NULL true, so a conjunction of keep-if-true kernels
// equals EvalPredicate over the AND of the conjuncts.
package vexec

import (
	"vsfabric/internal/expr"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// Kernel narrows a selection vector over one batch: it writes the surviving
// subset of sel (in order) into sel's backing array and returns it.
type Kernel func(b *storage.Batch, sel []int32) []int32

// Pred is a compiled predicate: zero or more typed kernels plus an optional
// interpreted residual conjunct.
// A Pred is immutable after Compile and safe for concurrent FilterBatch
// calls from parallel segment scans.
type Pred struct {
	kernels  []Kernel
	residual expr.Expr
	schema   types.Schema
	// zones holds the prunable conjunct shapes (column CMP literal, IS [NOT]
	// NULL) tested against per-container zone maps by CanPrune.
	zones []zoneCheck
}

// NumKernels returns how many conjuncts compiled to typed kernels.
func (p *Pred) NumKernels() int { return len(p.kernels) }

// Residual returns the interpreted remainder (nil when fully compiled).
func (p *Pred) Residual() expr.Expr { return p.residual }

// Compile lowers where against the schema. segIdx gives the schema indexes
// of the segmentation columns used to precompute batch hashes (HASH(...)
// conjuncts matching it lower to hash-vector kernels); pass nil when batch
// hashes are whole-row synthetic hashes. A nil where compiles to a
// pass-through predicate.
func Compile(where expr.Expr, schema types.Schema, segIdx []int) *Pred {
	p := &Pred{schema: schema}
	if where == nil {
		return p
	}
	var residual []expr.Expr
	for _, c := range splitConjuncts(where, nil) {
		if z, ok := collectZoneChecks(c, schema); ok {
			p.zones = append(p.zones, z)
		}
		if k, ok := lower(c, schema, segIdx); ok {
			if k != nil { // nil = always-true conjunct, dropped
				p.kernels = append(p.kernels, k)
			}
			continue
		}
		residual = append(residual, c)
	}
	p.residual = expr.Conjoin(residual...)
	return p
}

// FilterStats counts how filtering work split between compiled kernels and
// the interpreted residual, accumulated across FilterBatchStats calls.
type FilterStats struct {
	// KernelRows is the number of selected rows the typed kernels examined
	// (0 when the predicate compiled to no kernels).
	KernelRows int64
	// ResidualRows is the number of rows that survived the kernels and were
	// evaluated by the interpreted residual (0 when fully compiled).
	ResidualRows int64
}

// FilterBatch narrows b.Sel in place: kernels first, then the interpreted
// residual over materialized rows of the survivors.
func (p *Pred) FilterBatch(b *storage.Batch) error { return p.FilterBatchStats(b, nil) }

// FilterBatchStats is FilterBatch with optional work accounting for query
// profiling; fs may be nil.
func (p *Pred) FilterBatchStats(b *storage.Batch, fs *FilterStats) error {
	sel := b.Sel
	if fs != nil && len(p.kernels) > 0 {
		fs.KernelRows += int64(len(sel))
	}
	for _, k := range p.kernels {
		if len(sel) == 0 {
			break
		}
		sel = k(b, sel)
	}
	if p.residual != nil && len(sel) > 0 {
		if fs != nil {
			fs.ResidualRows += int64(len(sel))
		}
		out := sel[:0]
		var scratch types.Row // reused across rows within this batch
		for _, i := range sel {
			scratch = b.Row(int(i), scratch)
			ok, err := expr.EvalPredicate(p.residual, scratch, &b.Schema)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, i)
			}
		}
		sel = out
	}
	b.Sel = sel
	return nil
}

func splitConjuncts(e expr.Expr, dst []expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		return splitConjuncts(a.R, splitConjuncts(a.L, dst))
	}
	return append(dst, e)
}

// lower compiles one conjunct. It returns (nil, true) for conjuncts that are
// always true (droppable), (kernel, true) on success, and (_, false) when
// the conjunct must run interpreted.
func lower(e expr.Expr, schema types.Schema, segIdx []int) (Kernel, bool) {
	switch n := e.(type) {
	case *expr.Lit:
		if n.V.Null || !n.V.AsBool() {
			return selectNone, true
		}
		return nil, true
	case *expr.Col:
		ci := schema.ColIndex(n.Name)
		if ci < 0 || schema.Cols[ci].T != types.Bool {
			return nil, false
		}
		return boolTrueKernel(ci), true
	case *expr.IsNull:
		col, ok := n.E.(*expr.Col)
		if !ok {
			return nil, false
		}
		ci := schema.ColIndex(col.Name)
		if ci < 0 {
			return nil, false
		}
		return nullKernel(ci, n.Negate), true
	case *expr.Cmp:
		return lowerCmp(n, schema, segIdx)
	}
	return nil, false
}

func lowerCmp(c *expr.Cmp, schema types.Schema, segIdx []int) (Kernel, bool) {
	// HASH(segcols) CMP literal evaluates against the batch's precomputed
	// hash vector.
	if h, ok := c.L.(*expr.HashFn); ok {
		if lit, ok2 := c.R.(*expr.Lit); ok2 && hashMatchesSeg(h, schema, segIdx) {
			return lowerHashCmp(c.Op, lit)
		}
		return nil, false
	}
	op := c.Op
	col, okL := c.L.(*expr.Col)
	lit, okR := c.R.(*expr.Lit)
	if !okL || !okR {
		// literal CMP column: flip the operands.
		lit2, okL2 := c.L.(*expr.Lit)
		col2, okR2 := c.R.(*expr.Col)
		if !okL2 || !okR2 {
			return nil, false
		}
		col, lit, op = col2, lit2, flipOp(op)
	}
	ci := schema.ColIndex(col.Name)
	if ci < 0 {
		return nil, false
	}
	if lit.V.Null {
		// CMP with NULL is NULL for every row: nothing survives.
		return selectNone, true
	}
	colT, litT := schema.Cols[ci].T, lit.V.T
	switch {
	case colT == types.Int64 && litT == types.Int64:
		return intCmpKernel(ci, op, lit.V.I), true
	case colT == types.Int64 && litT == types.Float64,
		colT == types.Float64 && (litT == types.Int64 || litT == types.Float64):
		// Mixed numeric comparisons promote to float64, exactly as
		// types.Compare does.
		return floatCmpKernel(ci, op, lit.V.AsFloat()), true
	case colT == types.Varchar && litT == types.Varchar:
		return stringCmpKernel(ci, op, lit.V.S), true
	case colT == types.Bool && litT == types.Bool:
		return boolCmpKernel(ci, op, lit.V.B), true
	}
	// Cross-family comparisons (e.g. int column vs varchar literal) keep the
	// interpreter's exact — if odd — semantics by running as residual.
	return nil, false
}

func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default: // EQ, NE are symmetric
		return op
	}
}

// hashMatchesSeg reports whether HASH(...) computes the batch's precomputed
// row hash: HASH(*) when hashes are whole-row synthetic (segIdx empty), or
// HASH(c1..ck) naming the segmentation columns in order.
func hashMatchesSeg(h *expr.HashFn, schema types.Schema, segIdx []int) bool {
	if len(h.Args) == 0 {
		return len(segIdx) == 0
	}
	if len(h.Args) != len(segIdx) {
		return false
	}
	for i, a := range h.Args {
		col, ok := a.(*expr.Col)
		if !ok || schema.ColIndex(col.Name) != segIdx[i] {
			return false
		}
	}
	return true
}

func lowerHashCmp(op expr.CmpOp, lit *expr.Lit) (Kernel, bool) {
	if lit.V.Null {
		return selectNone, true
	}
	n := lit.V.AsInt()
	// Hash values are uint32 widened to int64, so they are always >= 0 and
	// <= MaxUint32; bounds outside that range collapse to always/never.
	switch op {
	case expr.GE, expr.GT:
		if n < 0 {
			return nil, true // always true
		}
	case expr.LT, expr.LE:
		if n < 0 {
			return selectNone, true
		}
	case expr.EQ:
		if n < 0 || n > int64(^uint32(0)) {
			return selectNone, true
		}
	default:
		return nil, false // NE stays interpreted; it never prunes usefully
	}
	return hashCmpKernel(op, uint64(n)), true
}

// selectNone drops every row (a conjunct that can never be true).
func selectNone(_ *storage.Batch, sel []int32) []int32 { return sel[:0] }

func hashCmpKernel(op expr.CmpOp, n uint64) Kernel {
	return func(b *storage.Batch, sel []int32) []int32 {
		out := sel[:0]
		for _, i := range sel {
			h := uint64(b.Hashes[i])
			var keep bool
			switch op {
			case expr.GE:
				keep = h >= n
			case expr.GT:
				keep = h > n
			case expr.LT:
				keep = h < n
			case expr.LE:
				keep = h <= n
			case expr.EQ:
				keep = h == n
			}
			if keep {
				out = append(out, i)
			}
		}
		return out
	}
}

func nullKernel(ci int, negate bool) Kernel {
	return func(b *storage.Batch, sel []int32) []int32 {
		col := b.Cols[ci]
		out := sel[:0]
		for _, i := range sel {
			if col.IsNull(int(i)) != negate {
				out = append(out, i)
			}
		}
		return out
	}
}

func boolTrueKernel(ci int) Kernel {
	return func(b *storage.Batch, sel []int32) []int32 {
		col, ok := b.Cols[ci].(*storage.BoolColumn)
		if !ok {
			return fallbackTruth(b, sel, ci)
		}
		out := sel[:0]
		for _, i := range sel {
			if (col.Nulls == nil || !col.Nulls[i]) && col.Vals[i] {
				out = append(out, i)
			}
		}
		return out
	}
}

// fallbackTruth handles a type-mismatched batch column (possible only if a
// table's stored column type drifts from its schema) via boxed values.
func fallbackTruth(b *storage.Batch, sel []int32, ci int) []int32 {
	col := b.Cols[ci]
	out := sel[:0]
	for _, i := range sel {
		v := col.Get(int(i))
		if !v.Null && v.AsBool() {
			out = append(out, i)
		}
	}
	return out
}

// cmpKeep converts a three-way comparison result into keep/drop under op.
func cmpKeep(op expr.CmpOp, n int) bool {
	switch op {
	case expr.EQ:
		return n == 0
	case expr.NE:
		return n != 0
	case expr.LT:
		return n < 0
	case expr.LE:
		return n <= 0
	case expr.GT:
		return n > 0
	case expr.GE:
		return n >= 0
	}
	return false
}

func intCmpKernel(ci int, op expr.CmpOp, lit int64) Kernel {
	return func(b *storage.Batch, sel []int32) []int32 {
		switch col := b.Cols[ci].(type) {
		case *storage.Int64RLEColumn:
			return intCmpRLE(col, sel, op, lit)
		case *storage.Int64Column:
			out := sel[:0]
			if col.Nulls == nil {
				// Hot loop: no null checks, no branching beyond the compare.
				switch op {
				case expr.EQ:
					for _, i := range sel {
						if col.Vals[i] == lit {
							out = append(out, i)
						}
					}
				case expr.NE:
					for _, i := range sel {
						if col.Vals[i] != lit {
							out = append(out, i)
						}
					}
				case expr.LT:
					for _, i := range sel {
						if col.Vals[i] < lit {
							out = append(out, i)
						}
					}
				case expr.LE:
					for _, i := range sel {
						if col.Vals[i] <= lit {
							out = append(out, i)
						}
					}
				case expr.GT:
					for _, i := range sel {
						if col.Vals[i] > lit {
							out = append(out, i)
						}
					}
				case expr.GE:
					for _, i := range sel {
						if col.Vals[i] >= lit {
							out = append(out, i)
						}
					}
				}
				return out
			}
			for _, i := range sel {
				if col.Nulls[i] {
					continue
				}
				v := col.Vals[i]
				if cmpKeep(op, compareInt(v, lit)) {
					out = append(out, i)
				}
			}
			return out
		default:
			return fallbackCmp(b, sel, ci, op, types.IntValue(lit))
		}
	}
}

// intCmpRLE evaluates the comparison once per RLE run and filters the
// selection by run membership — never touching per-row values. sel is
// ascending, so a single forward walk over the runs suffices.
func intCmpRLE(col *storage.Int64RLEColumn, sel []int32, op expr.CmpOp, lit int64) []int32 {
	out := sel[:0]
	run := 0
	match := false
	end := int32(-1)
	for _, i := range sel {
		if i >= end {
			for run < len(col.RunEnds) && i >= col.RunEnds[run] {
				run++
			}
			end = col.RunEnds[run]
			match = cmpKeep(op, compareInt(col.RunVals[run], lit))
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func floatCmpKernel(ci int, op expr.CmpOp, lit float64) Kernel {
	return func(b *storage.Batch, sel []int32) []int32 {
		out := sel[:0]
		switch col := b.Cols[ci].(type) {
		case *storage.Float64Column:
			for _, i := range sel {
				if col.Nulls != nil && col.Nulls[i] {
					continue
				}
				if cmpKeep(op, compareFloat(col.Vals[i], lit)) {
					out = append(out, i)
				}
			}
			return out
		case *storage.Int64Column:
			for _, i := range sel {
				if col.Nulls != nil && col.Nulls[i] {
					continue
				}
				if cmpKeep(op, compareFloat(float64(col.Vals[i]), lit)) {
					out = append(out, i)
				}
			}
			return out
		case *storage.Int64RLEColumn:
			run := 0
			match := false
			end := int32(-1)
			for _, i := range sel {
				if i >= end {
					for run < len(col.RunEnds) && i >= col.RunEnds[run] {
						run++
					}
					end = col.RunEnds[run]
					match = cmpKeep(op, compareFloat(float64(col.RunVals[run]), lit))
				}
				if match {
					out = append(out, i)
				}
			}
			return out
		default:
			return fallbackCmp(b, sel, ci, op, types.FloatValue(lit))
		}
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func stringCmpKernel(ci int, op expr.CmpOp, lit string) Kernel {
	return func(b *storage.Batch, sel []int32) []int32 {
		col, ok := b.Cols[ci].(*storage.StringColumn)
		if !ok {
			return fallbackCmp(b, sel, ci, op, types.StringValue(lit))
		}
		out := sel[:0]
		for _, i := range sel {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			v := col.Vals[i]
			var n int
			switch {
			case v < lit:
				n = -1
			case v > lit:
				n = 1
			}
			if cmpKeep(op, n) {
				out = append(out, i)
			}
		}
		return out
	}
}

func boolCmpKernel(ci int, op expr.CmpOp, lit bool) Kernel {
	return func(b *storage.Batch, sel []int32) []int32 {
		col, ok := b.Cols[ci].(*storage.BoolColumn)
		if !ok {
			return fallbackCmp(b, sel, ci, op, types.BoolValue(lit))
		}
		out := sel[:0]
		for _, i := range sel {
			if col.Nulls != nil && col.Nulls[i] {
				continue
			}
			// false < true, per types.Compare.
			var n int
			v := col.Vals[i]
			switch {
			case v == lit:
				n = 0
			case lit:
				n = -1
			default:
				n = 1
			}
			if cmpKeep(op, n) {
				out = append(out, i)
			}
		}
		return out
	}
}

// fallbackCmp compares via boxed values when the batch column's concrete
// type doesn't match the schema-declared type the kernel was compiled for.
func fallbackCmp(b *storage.Batch, sel []int32, ci int, op expr.CmpOp, lit types.Value) []int32 {
	col := b.Cols[ci]
	out := sel[:0]
	for _, i := range sel {
		v := col.Get(int(i))
		if v.Null {
			continue
		}
		if cmpKeep(op, types.Compare(v, lit)) {
			out = append(out, i)
		}
	}
	return out
}
