package vexec

import (
	"fmt"
	"math/rand"
	"testing"

	"vsfabric/internal/expr"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func intSchema() types.Schema {
	return types.Schema{Cols: []types.Column{
		{Name: "x", T: types.Int64},
		{Name: "f", T: types.Float64},
		{Name: "s", T: types.Varchar},
		{Name: "b", T: types.Bool},
	}}
}

// mkBatch builds a batch from rows with a full selection vector.
func mkBatch(t *testing.T, schema types.Schema, rows []types.Row) *storage.Batch {
	t.Helper()
	cols, err := storage.ColumnsFromRows(rows, schema)
	if err != nil {
		t.Fatal(err)
	}
	hashes := make([]uint32, len(rows))
	for i, r := range rows {
		hashes[i] = vhash.HashRow(r, nil)
	}
	sel := make([]int32, len(rows))
	for i := range sel {
		sel[i] = int32(i)
	}
	return &storage.Batch{Schema: schema, Cols: cols, Hashes: hashes, Sel: sel}
}

// interpretSel returns the selection the interpreted evaluator would keep.
func interpretSel(t *testing.T, where expr.Expr, b *storage.Batch, sel []int32) []int32 {
	t.Helper()
	var out []int32
	var row types.Row
	for _, i := range sel {
		row = b.Row(int(i), row)
		ok, err := expr.EvalPredicate(where, row, &b.Schema)
		if err != nil {
			t.Fatalf("interpret: %v", err)
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

func selEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func runBoth(t *testing.T, where expr.Expr, b *storage.Batch, wantKernels int) []int32 {
	t.Helper()
	want := interpretSel(t, where, b, b.Sel)
	p := Compile(where, b.Schema, nil)
	if wantKernels >= 0 && p.NumKernels() != wantKernels {
		t.Fatalf("Compile(%s): %d kernels, want %d (residual %v)", where.SQL(), p.NumKernels(), wantKernels, p.Residual())
	}
	if err := p.FilterBatch(b); err != nil {
		t.Fatalf("FilterBatch(%s): %v", where.SQL(), err)
	}
	if !selEqual(b.Sel, want) {
		t.Fatalf("FilterBatch(%s) = %v, want %v", where.SQL(), b.Sel, want)
	}
	return b.Sel
}

func col(n string) expr.Expr      { return &expr.Col{Name: n} }
func lit(v types.Value) expr.Expr { return &expr.Lit{V: v} }
func cmp(op expr.CmpOp, l, r expr.Expr) expr.Expr {
	return &expr.Cmp{Op: op, L: l, R: r}
}

func TestKernelIntCmpWithNulls(t *testing.T) {
	schema := intSchema()
	rows := []types.Row{
		{types.IntValue(1), types.FloatValue(0.5), types.StringValue("a"), types.BoolValue(true)},
		{types.NullValue(types.Int64), types.FloatValue(1.5), types.StringValue("b"), types.BoolValue(false)},
		{types.IntValue(3), types.NullValue(types.Float64), types.NullValue(types.Varchar), types.NullValue(types.Bool)},
		{types.IntValue(-7), types.FloatValue(3.5), types.StringValue("c"), types.BoolValue(true)},
	}
	for _, op := range []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE} {
		b := mkBatch(t, schema, rows)
		runBoth(t, cmp(op, col("x"), lit(types.IntValue(1))), b, 1)
	}
	// NULL rows must be dropped by every comparison.
	b := mkBatch(t, schema, rows)
	got := runBoth(t, cmp(expr.NE, col("x"), lit(types.IntValue(99))), b, 1)
	if len(got) != 3 {
		t.Fatalf("NE kernel kept %v, want 3 non-null rows", got)
	}
}

func TestKernelLiteralOnLeftFlips(t *testing.T) {
	schema := intSchema()
	rows := []types.Row{
		{types.IntValue(1), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
		{types.IntValue(5), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
		{types.IntValue(9), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
	}
	// 5 < x  ≡  x > 5 → only 9 survives.
	b := mkBatch(t, schema, rows)
	got := runBoth(t, cmp(expr.LT, lit(types.IntValue(5)), col("x")), b, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("flipped kernel kept %v, want [2]", got)
	}
}

func TestKernelNullLiteralSelectsNothing(t *testing.T) {
	schema := intSchema()
	rows := []types.Row{
		{types.IntValue(1), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
	}
	b := mkBatch(t, schema, rows)
	got := runBoth(t, cmp(expr.EQ, col("x"), lit(types.NullValue(types.Int64))), b, 1)
	if len(got) != 0 {
		t.Fatalf("x = NULL kept %v, want none", got)
	}
}

func TestKernelIsNull(t *testing.T) {
	schema := intSchema()
	rows := []types.Row{
		{types.IntValue(1), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
		{types.NullValue(types.Int64), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
	}
	b := mkBatch(t, schema, rows)
	got := runBoth(t, &expr.IsNull{E: col("x")}, b, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("IS NULL kept %v, want [1]", got)
	}
	b = mkBatch(t, schema, rows)
	got = runBoth(t, &expr.IsNull{E: col("x"), Negate: true}, b, 1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("IS NOT NULL kept %v, want [0]", got)
	}
}

func TestKernelEmptySelection(t *testing.T) {
	schema := intSchema()
	rows := []types.Row{
		{types.IntValue(1), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
	}
	b := mkBatch(t, schema, rows)
	b.Sel = b.Sel[:0]
	p := Compile(cmp(expr.EQ, col("x"), lit(types.IntValue(1))), schema, nil)
	if err := p.FilterBatch(b); err != nil {
		t.Fatal(err)
	}
	if len(b.Sel) != 0 {
		t.Fatalf("empty selection grew to %v", b.Sel)
	}
}

func TestKernelRLERunBoundaries(t *testing.T) {
	// Build an RLE-compressible vector: 100 zeros, 100 ones, 100 twos, and a
	// single trailing 3 (a 1-row run at the very end).
	var vals []int64
	for _, spec := range []struct {
		v int64
		n int
	}{{0, 100}, {1, 100}, {2, 100}, {3, 1}} {
		for i := 0; i < spec.n; i++ {
			vals = append(vals, spec.v)
		}
	}
	dense := &storage.Int64Column{Vals: vals}
	comp := storage.CompressColumn(dense)
	rle, ok := comp.(*storage.Int64RLEColumn)
	if !ok {
		t.Fatalf("CompressColumn did not produce RLE (got %T)", comp)
	}
	if rle.Len() != len(vals) {
		t.Fatalf("RLE Len = %d, want %d", rle.Len(), len(vals))
	}
	for i := range vals {
		if got := rle.Get(i).I; got != vals[i] {
			t.Fatalf("RLE Get(%d) = %d, want %d", i, got, vals[i])
		}
	}
	schema := types.Schema{Cols: []types.Column{{Name: "x", T: types.Int64}}}
	full := make([]int32, len(vals))
	for i := range full {
		full[i] = int32(i)
	}
	selCases := [][]int32{
		full,
		{0, 99, 100, 199, 200, 299, 300}, // every run boundary, both sides
		{300},                            // only the 1-row trailing run
		{50, 150, 250},                   // run interiors
		{},                               // empty selection
	}
	for _, op := range []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.GE} {
		for ci, baseSel := range selCases {
			b := &storage.Batch{Schema: schema, Cols: []storage.Column{comp},
				Hashes: make([]uint32, len(vals)), Sel: append([]int32(nil), baseSel...)}
			want := interpretSel(t, cmp(op, col("x"), lit(types.IntValue(1))), b, b.Sel)
			p := Compile(cmp(op, col("x"), lit(types.IntValue(1))), schema, nil)
			if p.NumKernels() != 1 || p.Residual() != nil {
				t.Fatalf("RLE predicate did not fully compile")
			}
			if err := p.FilterBatch(b); err != nil {
				t.Fatal(err)
			}
			if !selEqual(b.Sel, want) {
				t.Fatalf("op %v case %d: got %v, want %v", op, ci, b.Sel, want)
			}
		}
	}
}

func TestKernelMixedCompiledAndResidual(t *testing.T) {
	schema := intSchema()
	var rows []types.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, types.Row{
			types.IntValue(int64(i % 7)),
			types.FloatValue(float64(i) / 3),
			types.StringValue(fmt.Sprintf("s%d", i%5)),
			types.BoolValue(i%2 == 0),
		})
	}
	// x >= 2 compiles; (f > 1 OR s = 's3') is an OR → residual.
	where := expr.Conjoin(
		cmp(expr.GE, col("x"), lit(types.IntValue(2))),
		&expr.Or{
			L: cmp(expr.GT, col("f"), lit(types.FloatValue(1))),
			R: cmp(expr.EQ, col("s"), lit(types.StringValue("s3"))),
		},
	)
	b := mkBatch(t, schema, rows)
	p := Compile(where, schema, nil)
	if p.NumKernels() != 1 {
		t.Fatalf("want 1 compiled kernel, got %d", p.NumKernels())
	}
	if p.Residual() == nil {
		t.Fatalf("want a residual for the OR conjunct")
	}
	runBoth(t, where, b, -1)
}

func TestKernelHashRange(t *testing.T) {
	schema := types.Schema{Cols: []types.Column{{Name: "x", T: types.Int64}}}
	var rows []types.Row
	for i := 0; i < 64; i++ {
		rows = append(rows, types.Row{types.IntValue(int64(i))})
	}
	b := mkBatch(t, schema, rows)
	mid := int64(1) << 31
	where := cmp(expr.GE, &expr.HashFn{}, lit(types.IntValue(mid)))
	p := Compile(where, schema, nil)
	if p.NumKernels() != 1 || p.Residual() != nil {
		t.Fatalf("HASH(*) range did not compile to a kernel")
	}
	want := interpretSel(t, where, b, b.Sel)
	if err := p.FilterBatch(b); err != nil {
		t.Fatal(err)
	}
	if !selEqual(b.Sel, want) {
		t.Fatalf("hash kernel got %v, want %v", b.Sel, want)
	}
	if len(b.Sel) == 0 || len(b.Sel) == len(rows) {
		t.Fatalf("hash range should split the rows, kept %d/%d", len(b.Sel), len(rows))
	}
}

func TestKernelBareBoolColumn(t *testing.T) {
	schema := intSchema()
	rows := []types.Row{
		{types.IntValue(0), types.FloatValue(0), types.StringValue(""), types.BoolValue(true)},
		{types.IntValue(0), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
		{types.IntValue(0), types.FloatValue(0), types.StringValue(""), types.NullValue(types.Bool)},
	}
	b := mkBatch(t, schema, rows)
	got := runBoth(t, col("b"), b, 1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("bare bool kernel kept %v, want [0]", got)
	}
}

// TestVectorizedMatchesInterpretedProperty cross-checks the compiled
// pipeline against the interpreter on random data and random predicates.
func TestVectorizedMatchesInterpretedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfab51c))
	schema := intSchema()
	strs := []string{"alpha", "beta", "gamma", "", "delta"}
	randVal := func(t types.Type) types.Value {
		if rng.Intn(8) == 0 {
			return types.NullValue(t)
		}
		switch t {
		case types.Int64:
			return types.IntValue(int64(rng.Intn(20) - 10))
		case types.Float64:
			return types.FloatValue(float64(rng.Intn(40))/4 - 5)
		case types.Varchar:
			return types.StringValue(strs[rng.Intn(len(strs))])
		default:
			return types.BoolValue(rng.Intn(2) == 0)
		}
	}
	randLeaf := func() expr.Expr {
		ci := rng.Intn(len(schema.Cols))
		c := schema.Cols[ci]
		switch rng.Intn(4) {
		case 0:
			return &expr.IsNull{E: col(c.Name), Negate: rng.Intn(2) == 0}
		case 1: // literal on the left
			return cmp(expr.CmpOp(rng.Intn(6)), lit(randVal(c.T)), col(c.Name))
		default:
			return cmp(expr.CmpOp(rng.Intn(6)), col(c.Name), lit(randVal(c.T)))
		}
	}
	var randPred func(depth int) expr.Expr
	randPred = func(depth int) expr.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			return randLeaf()
		}
		switch rng.Intn(3) {
		case 0:
			return &expr.And{L: randPred(depth - 1), R: randPred(depth - 1)}
		case 1:
			return &expr.Or{L: randPred(depth - 1), R: randPred(depth - 1)}
		default:
			return &expr.Not{E: randPred(depth - 1)}
		}
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		rows := make([]types.Row, n)
		for i := range rows {
			rows[i] = types.Row{
				randVal(types.Int64), randVal(types.Float64),
				randVal(types.Varchar), randVal(types.Bool),
			}
		}
		where := randPred(3)
		b := mkBatch(t, schema, rows)
		want := interpretSel(t, where, b, b.Sel)
		p := Compile(where, schema, nil)
		if err := p.FilterBatch(b); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, where.SQL(), err)
		}
		if !selEqual(b.Sel, want) {
			t.Fatalf("trial %d: predicate %s\nvectorized %v\ninterpreted %v",
				trial, where.SQL(), b.Sel, want)
		}
	}
}

func TestCompileNilPredicate(t *testing.T) {
	p := Compile(nil, intSchema(), nil)
	if p.NumKernels() != 0 || p.Residual() != nil {
		t.Fatalf("nil predicate should be a pass-through")
	}
	rows := []types.Row{
		{types.IntValue(1), types.FloatValue(0), types.StringValue(""), types.BoolValue(false)},
	}
	b := mkBatch(t, intSchema(), rows)
	if err := p.FilterBatch(b); err != nil {
		t.Fatal(err)
	}
	if len(b.Sel) != 1 {
		t.Fatalf("pass-through dropped rows: %v", b.Sel)
	}
}
