package vexec

import (
	"vsfabric/internal/expr"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// zoneCheck is the prunable shape extracted from one conjunct: either a
// column/literal comparison or an IS [NOT] NULL test. A container whose zone
// map proves the check can never hold excludes every row in the container —
// because the checks come from conjuncts, any single impossible check prunes
// the whole container.
type zoneCheck struct {
	ci     int
	op     expr.CmpOp
	lit    types.Value
	isNull bool // IS NULL (negate=false) / IS NOT NULL (negate=true) instead of a comparison
	negate bool
}

// collectZoneChecks extracts prunable checks from a conjunct. It runs beside
// lowering: a conjunct may produce both a kernel and a zone check (the check
// skips whole containers, the kernel filters the survivors), and a residual
// conjunct of the right shape can still prune even though it runs
// interpreted.
func collectZoneChecks(e expr.Expr, schema types.Schema) (zoneCheck, bool) {
	switch n := e.(type) {
	case *expr.IsNull:
		col, ok := n.E.(*expr.Col)
		if !ok {
			return zoneCheck{}, false
		}
		ci := schema.ColIndex(col.Name)
		if ci < 0 {
			return zoneCheck{}, false
		}
		return zoneCheck{ci: ci, isNull: true, negate: n.Negate}, true
	case *expr.Cmp:
		op := n.Op
		col, okL := n.L.(*expr.Col)
		lit, okR := n.R.(*expr.Lit)
		if !okL || !okR {
			lit2, okL2 := n.L.(*expr.Lit)
			col2, okR2 := n.R.(*expr.Col)
			if !okL2 || !okR2 {
				return zoneCheck{}, false
			}
			col, lit, op = col2, lit2, flipOp(op)
		}
		ci := schema.ColIndex(col.Name)
		if ci < 0 || lit.V.Null {
			return zoneCheck{}, false
		}
		if !sameCompareFamily(schema.Cols[ci].T, lit.V.T) {
			// Cross-family comparisons keep the interpreter's odd semantics;
			// min/max bounds say nothing about them.
			return zoneCheck{}, false
		}
		return zoneCheck{ci: ci, op: op, lit: lit.V}, true
	}
	return zoneCheck{}, false
}

// sameCompareFamily reports whether types.Compare orders a and b by value
// (numeric promotion, string order, bool order) rather than falling into a
// cross-family comparison whose result min/max bounds cannot predict.
func sameCompareFamily(a, b types.Type) bool {
	num := func(t types.Type) bool { return t == types.Int64 || t == types.Float64 }
	switch {
	case num(a) && num(b):
		return true
	case a == types.Varchar && b == types.Varchar:
		return true
	case a == types.Bool && b == types.Bool:
		return true
	}
	return false
}

// HasZoneChecks reports whether the predicate extracted any prunable
// conjuncts (false means CanPrune never prunes).
func (p *Pred) HasZoneChecks() bool { return len(p.zones) > 0 }

// CanPrune reports whether a container's zone maps prove that no physical row
// can satisfy the predicate, so the scan may skip the container without
// building a selection vector. stats is indexed like the schema's columns.
func (p *Pred) CanPrune(stats []storage.ColStats, rowCount int) bool {
	if rowCount == 0 {
		return true
	}
	for _, z := range p.zones {
		if z.ci >= len(stats) {
			continue
		}
		st := stats[z.ci]
		if z.isNull {
			if !z.negate && st.NullCount == 0 {
				return true // IS NULL, but the container holds no NULLs
			}
			if z.negate && st.NullCount == rowCount {
				return true // IS NOT NULL, but every value is NULL
			}
			continue
		}
		if !st.HasMinMax {
			return true // every value NULL: col CMP lit is NULL for all rows
		}
		// Guard against stored-column type drift: bounds must still order
		// against the literal by value for the range test to mean anything.
		if !sameCompareFamily(st.Min.T, z.lit.T) || !sameCompareFamily(st.Max.T, z.lit.T) {
			continue
		}
		lo := types.Compare(z.lit, st.Min) // <0: lit below every value
		hi := types.Compare(z.lit, st.Max) // >0: lit above every value
		switch z.op {
		case expr.EQ:
			if lo < 0 || hi > 0 {
				return true
			}
		case expr.NE:
			// Only impossible when every value equals the literal.
			if lo == 0 && hi == 0 && types.Compare(st.Min, st.Max) == 0 {
				return true
			}
		case expr.LT:
			if lo <= 0 { // lit <= Min: no value < lit
				return true
			}
		case expr.LE:
			if lo < 0 {
				return true
			}
		case expr.GT:
			if hi >= 0 { // lit >= Max: no value > lit
				return true
			}
		case expr.GE:
			if hi > 0 {
				return true
			}
		}
	}
	return false
}
