package vexec

import (
	"testing"

	"vsfabric/internal/expr"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

func intStats(min, max int64, nulls int) storage.ColStats {
	return storage.ColStats{
		NullCount: nulls, HasMinMax: true,
		Min: types.IntValue(min), Max: types.IntValue(max),
	}
}

// statsFor places st at the x column of intSchema's 4-column layout.
func statsFor(st storage.ColStats) []storage.ColStats {
	return []storage.ColStats{st, {}, {}, {}}
}

func TestCanPruneRanges(t *testing.T) {
	schema := intSchema()
	cases := []struct {
		where expr.Expr
		stats storage.ColStats
		prune bool
	}{
		{cmp(expr.GT, col("x"), lit(i64(10))), intStats(1, 5, 0), true},
		{cmp(expr.GT, col("x"), lit(i64(10))), intStats(1, 20, 0), false},
		{cmp(expr.GT, col("x"), lit(i64(10))), intStats(1, 10, 0), true}, // lit == max: no value > 10
		{cmp(expr.GE, col("x"), lit(i64(10))), intStats(1, 10, 0), false},
		{cmp(expr.LT, col("x"), lit(i64(1))), intStats(1, 5, 0), true},
		{cmp(expr.LE, col("x"), lit(i64(1))), intStats(1, 5, 0), false},
		{cmp(expr.EQ, col("x"), lit(i64(7))), intStats(1, 5, 0), true},
		{cmp(expr.EQ, col("x"), lit(i64(4))), intStats(1, 5, 0), false},
		{cmp(expr.NE, col("x"), lit(i64(4))), intStats(4, 4, 0), true}, // every value is 4
		{cmp(expr.NE, col("x"), lit(i64(4))), intStats(4, 5, 0), false},
		// Float literal against int zone map orders by value.
		{cmp(expr.GT, col("x"), lit(f64(10.5))), intStats(1, 5, 0), true},
	}
	for _, tc := range cases {
		p := Compile(tc.where, schema, nil)
		if !p.HasZoneChecks() {
			t.Fatalf("%s: no zone check extracted", tc.where.SQL())
		}
		if got := p.CanPrune(statsFor(tc.stats), 100); got != tc.prune {
			t.Errorf("%s over [%v..%v]: prune=%v, want %v",
				tc.where.SQL(), tc.stats.Min, tc.stats.Max, got, tc.prune)
		}
	}
}

func TestCanPruneNulls(t *testing.T) {
	schema := intSchema()
	isNull := Compile(&expr.IsNull{E: col("x")}, schema, nil)
	notNull := Compile(&expr.IsNull{E: col("x"), Negate: true}, schema, nil)
	if !isNull.CanPrune(statsFor(intStats(1, 5, 0)), 100) {
		t.Error("IS NULL should prune a container with zero NULLs")
	}
	if isNull.CanPrune(statsFor(intStats(1, 5, 3)), 100) {
		t.Error("IS NULL must not prune a container holding NULLs")
	}
	allNull := storage.ColStats{NullCount: 100}
	if !notNull.CanPrune(statsFor(allNull), 100) {
		t.Error("IS NOT NULL should prune an all-NULL container")
	}
	// x > 10 over an all-NULL column is NULL for every row: prunable.
	gt := Compile(cmp(expr.GT, col("x"), lit(i64(10))), schema, nil)
	if !gt.CanPrune(statsFor(allNull), 100) {
		t.Error("comparison should prune an all-NULL container")
	}
}

func TestCanPruneConjunct(t *testing.T) {
	schema := intSchema()
	// x > 10 AND s = 'q': either conjunct alone may prove emptiness.
	where := &expr.And{L: cmp(expr.GT, col("x"), lit(i64(10))), R: cmp(expr.EQ, col("s"), lit(str("q")))}
	p := Compile(where, schema, nil)
	stats := []storage.ColStats{
		intStats(1, 5, 0),
		{},
		{HasMinMax: true, Min: types.StringValue("a"), Max: types.StringValue("z")},
		{},
	}
	if !p.CanPrune(stats, 100) {
		t.Error("x range excludes the container; conjunct should prune")
	}
	stats[0] = intStats(1, 50, 0)
	if p.CanPrune(stats, 100) {
		t.Error("neither conjunct excludes the container")
	}
	stats[2] = storage.ColStats{HasMinMax: true, Min: types.StringValue("r"), Max: types.StringValue("z")}
	if !p.CanPrune(stats, 100) {
		t.Error("string zone map should prune s = 'q'")
	}
}

func TestCanPruneEmptyAndTypeDrift(t *testing.T) {
	schema := intSchema()
	p := Compile(cmp(expr.GT, col("x"), lit(i64(10))), schema, nil)
	if !p.CanPrune(statsFor(intStats(1, 50, 0)), 0) {
		t.Error("zero-row container always prunes")
	}
	// A stats entry whose bounds don't order against the literal is ignored.
	drift := storage.ColStats{HasMinMax: true, Min: types.StringValue("a"), Max: types.StringValue("z")}
	if p.CanPrune(statsFor(drift), 100) {
		t.Error("type-drifted stats must not prune")
	}
	// NoZone predicate: nothing extracted, never prunes.
	bare := Compile(nil, schema, nil)
	if bare.HasZoneChecks() {
		t.Error("nil predicate extracted zone checks")
	}
}
