// Package vhash implements the segmentation hash used by the engine to place
// rows on the hash ring, mirroring Vertica's SEGMENTED BY HASH(columns)
// clause (§2.1.1 of the paper). The connector's V2S locality optimization
// (§3.1.2) depends on computing exactly this hash on the client side so that
// each Spark task can request a non-overlapping hash range that lives on a
// single node.
//
// The ring is the full 32-bit space [0, 2^32). A table segmented over N nodes
// assigns node i the contiguous range [i*2^32/N, (i+1)*2^32/N).
package vhash

import (
	"encoding/binary"
	"math"

	"vsfabric/internal/types"
)

// RingSize is the size of the hash ring (2^32). Segment boundaries and the
// connector's sub-range arithmetic are computed in this space using uint64 so
// the exclusive upper bound 2^32 is representable.
const RingSize uint64 = 1 << 32

// Hash computes the segmentation hash of the given values on the 32-bit ring.
// It is a 64-bit FNV-1a over a canonical little-endian encoding of each
// value, folded to 32 bits. Every component (engine row routing, connector
// range queries, the SQL HASH() builtin) must agree on this function.
func Hash(vals ...types.Value) uint32 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	var buf [8]byte
	mix := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	}
	for _, v := range vals {
		if v.Null {
			mix([]byte{0xff})
			continue
		}
		switch v.T {
		case types.Int64:
			binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
			mix(buf[:])
		case types.Float64:
			// Hash integral floats identically to the equal integer so that
			// re-segmentation across type changes stays stable.
			if f := v.F; f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
				binary.LittleEndian.PutUint64(buf[:], uint64(int64(f)))
			} else {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			}
			mix(buf[:])
		case types.Varchar:
			mix([]byte(v.S))
			mix([]byte{0})
		case types.Bool:
			if v.B {
				mix([]byte{1})
			} else {
				mix([]byte{2})
			}
		}
	}
	return uint32(h ^ (h >> 32))
}

// HashRow hashes the row's values at the given column indexes. An empty index
// list hashes the whole row (the "synthetic hash" used for views and
// unsegmented tables, §3.1 of the paper).
func HashRow(r types.Row, colIdx []int) uint32 {
	if len(colIdx) == 0 {
		return Hash(r...)
	}
	vals := make([]types.Value, len(colIdx))
	for i, c := range colIdx {
		vals[i] = r[c]
	}
	return Hash(vals...)
}

// Range is a half-open interval [Lo, Hi) on the hash ring. Hi may be RingSize
// (one past the largest 32-bit value).
type Range struct {
	Lo uint64
	Hi uint64
}

// Contains reports whether hash h falls inside the range.
func (r Range) Contains(h uint32) bool { return uint64(h) >= r.Lo && uint64(h) < r.Hi }

// Width returns the number of ring positions covered.
func (r Range) Width() uint64 { return r.Hi - r.Lo }

// Empty reports whether the range covers nothing.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Segments divides the ring into n contiguous, non-overlapping segments that
// exactly cover [0, RingSize). Segment i is assigned to node i, the layout
// recorded in the system catalog and consulted by the connector (§3.1.2).
func Segments(n int) []Range {
	out := make([]Range, n)
	for i := 0; i < n; i++ {
		out[i] = Range{
			Lo: RingSize * uint64(i) / uint64(n),
			Hi: RingSize * uint64(i+1) / uint64(n),
		}
	}
	return out
}

// Split divides a range into k contiguous sub-ranges that exactly cover it.
// The connector uses this to give each Spark partition a unique slice of a
// segment (Figure 4(b): 8 partitions over 4 segments → each asks for half a
// segment). Sub-range widths differ by at most one ring position.
func Split(r Range, k int) []Range {
	out := make([]Range, k)
	w := r.Width()
	for i := 0; i < k; i++ {
		out[i] = Range{
			Lo: r.Lo + w*uint64(i)/uint64(k),
			Hi: r.Lo + w*uint64(i+1)/uint64(k),
		}
	}
	return out
}

// SegmentOf returns the index of the segment containing hash h when the ring
// is divided into n equal segments.
func SegmentOf(h uint32, n int) int {
	return int(uint64(h) * uint64(n) / RingSize)
}
