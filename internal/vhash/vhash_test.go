package vhash

import (
	"testing"
	"testing/quick"

	"vsfabric/internal/types"
)

func TestSegmentsCoverRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16, 24} {
		segs := Segments(n)
		if segs[0].Lo != 0 {
			t.Errorf("n=%d: first segment starts at %d", n, segs[0].Lo)
		}
		if segs[n-1].Hi != RingSize {
			t.Errorf("n=%d: last segment ends at %d", n, segs[n-1].Hi)
		}
		for i := 1; i < n; i++ {
			if segs[i].Lo != segs[i-1].Hi {
				t.Errorf("n=%d: gap between segments %d and %d", n, i-1, i)
			}
		}
	}
}

func TestSplitCoversRange(t *testing.T) {
	r := Range{Lo: 100, Hi: 1000003}
	for _, k := range []int{1, 2, 7, 64} {
		parts := Split(r, k)
		if parts[0].Lo != r.Lo || parts[k-1].Hi != r.Hi {
			t.Errorf("k=%d: split does not cover range: %v", k, parts)
		}
		total := uint64(0)
		for i, p := range parts {
			if i > 0 && p.Lo != parts[i-1].Hi {
				t.Errorf("k=%d: gap at part %d", k, i)
			}
			total += p.Width()
		}
		if total != r.Width() {
			t.Errorf("k=%d: widths sum to %d, want %d", k, total, r.Width())
		}
	}
}

// Every hash lands in exactly one of the n segments, and SegmentOf agrees
// with Contains.
func TestSegmentOfConsistent(t *testing.T) {
	f := func(h uint32, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		segs := Segments(n)
		idx := SegmentOf(h, n)
		if idx < 0 || idx >= n {
			return false
		}
		count := 0
		for _, s := range segs {
			if s.Contains(h) {
				count++
			}
		}
		return count == 1 && segs[idx].Contains(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	a := Hash(types.IntValue(7), types.StringValue("x"))
	b := Hash(types.IntValue(7), types.StringValue("x"))
	if a != b {
		t.Error("hash must be deterministic")
	}
	if Hash(types.IntValue(7)) == Hash(types.IntValue(8)) {
		t.Error("distinct ints should (almost surely) hash differently")
	}
}

func TestHashIntFloatAgree(t *testing.T) {
	if Hash(types.IntValue(42)) != Hash(types.FloatValue(42)) {
		t.Error("integral float must hash like the equal integer")
	}
}

func TestHashNullDistinct(t *testing.T) {
	if Hash(types.NullValue(types.Int64)) == Hash(types.IntValue(0)) {
		t.Error("NULL should not collide with zero by construction")
	}
}

func TestHashRowSubset(t *testing.T) {
	r := types.Row{types.IntValue(1), types.StringValue("a"), types.FloatValue(2)}
	if HashRow(r, []int{0}) != Hash(types.IntValue(1)) {
		t.Error("HashRow with index subset should hash only those columns")
	}
	if HashRow(r, nil) != Hash(r...) {
		t.Error("HashRow with no indexes should hash the whole row")
	}
}

// Hash distribution: segments of a 4-node ring should each get roughly a
// quarter of sequential integer keys.
func TestHashDistribution(t *testing.T) {
	const n, keys = 4, 40000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[SegmentOf(Hash(types.IntValue(int64(i))), n)]++
	}
	for i, c := range counts {
		frac := float64(c) / keys
		if frac < 0.2 || frac > 0.3 {
			t.Errorf("segment %d got %.3f of keys, want ~0.25", i, frac)
		}
	}
}

func TestRangeOps(t *testing.T) {
	r := Range{Lo: 10, Hi: 20}
	if !r.Contains(10) || r.Contains(20) || r.Contains(9) {
		t.Error("Contains must be half-open [Lo, Hi)")
	}
	if r.Width() != 10 {
		t.Errorf("Width = %d", r.Width())
	}
	if r.Empty() || (Range{Lo: 5, Hi: 5}).Empty() == false {
		t.Error("Empty misbehaves")
	}
}
