package vsql

import (
	"time"

	"vsfabric/internal/expr"
	"vsfabric/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ isStmt() }

// AggFn is an aggregate function name.
type AggFn string

// Aggregate functions.
const (
	AggCount AggFn = "COUNT"
	AggSum   AggFn = "SUM"
	AggAvg   AggFn = "AVG"
	AggMin   AggFn = "MIN"
	AggMax   AggFn = "MAX"
)

// SelectItem is one output of a SELECT: a star, an aggregate, or a scalar
// expression.
type SelectItem struct {
	Star  bool
	Agg   AggFn     // "" if not an aggregate
	Arg   expr.Expr // aggregate argument; nil for COUNT(*)
	Expr  expr.Expr // scalar expression when Agg == "" and !Star
	Alias string
}

// EpochRef selects the snapshot for AT EPOCH queries.
type EpochRef struct {
	Latest bool
	N      uint64
}

// TableRef names a table or view, with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// JoinClause is an inner equi-join against a second table.
type JoinClause struct {
	Right    TableRef
	LeftCol  string
	RightCol string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  string
	Desc bool
}

// Select is a query statement.
type Select struct {
	Items   []SelectItem
	From    *TableRef     // nil for FROM-less SELECT (e.g. SELECT LAST_EPOCH())
	Joins   []*JoinClause // inner equi-joins, in syntactic order
	Where   expr.Expr
	GroupBy []string
	OrderBy []OrderItem
	Limit   int64 // -1 = no limit
	AtEpoch *EpochRef
}

func (*Select) isStmt() {}

// Profile wraps a SELECT to run it with per-operator instrumentation: the
// result set is the operator timing breakdown, not the query's rows
// (Vertica's PROFILE directive).
type Profile struct {
	Select *Select
}

func (*Profile) isStmt() {}

// Explain wraps a SELECT to plan it without executing: the result set is the
// planner's chosen strategy — join order, build sides, pushdowns, and
// per-table container pruning from zone maps.
type Explain struct {
	Select *Select
}

func (*Explain) isStmt() {}

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type types.Type
}

// CreateTable creates a table.
type CreateTable struct {
	Name        string
	Temp        bool
	IfNotExists bool
	Cols        []ColumnDef
	Like        string   // CREATE TABLE x LIKE y (schema copy); Cols empty
	SegCols     []string // SEGMENTED BY HASH(...)
	Unsegmented bool
	KSafety     int
}

func (*CreateTable) isStmt() {}

// DropTable drops a table.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) isStmt() {}

// CreateView registers a view over a SELECT.
type CreateView struct {
	Name      string
	SelectSQL string // original text of the defining SELECT
	Stmt      *Select
}

func (*CreateView) isStmt() {}

// DropView drops a view.
type DropView struct {
	Name     string
	IfExists bool
}

func (*DropView) isStmt() {}

// AlterClusterAction selects what an ALTER CLUSTER statement does.
type AlterClusterAction int

const (
	// AlterClusterAdd grows the cluster by one node and rebalances every
	// table onto the extended ring (ALTER CLUSTER ADD NODE).
	AlterClusterAdd AlterClusterAction = iota + 1
	// AlterClusterRemove drains a node's segments onto the surviving members
	// and drops it (ALTER CLUSTER REMOVE NODE <id>).
	AlterClusterRemove
)

// AlterCluster changes cluster membership (ALTER CLUSTER ADD/REMOVE NODE).
type AlterCluster struct {
	Action AlterClusterAction
	Node   int // the node to remove (ignored for ADD)
}

func (*AlterCluster) isStmt() {}

// AlterRename renames a table (ALTER TABLE x RENAME TO y).
type AlterRename struct {
	Name    string
	NewName string
}

func (*AlterRename) isStmt() {}

// Insert adds rows: literal VALUES, or the result of a SELECT (INSERT INTO t
// SELECT ... — the server-side data movement S2V append mode commits with).
type Insert struct {
	Table  string
	Cols   []string
	Rows   [][]expr.Expr
	Select *Select
}

func (*Insert) isStmt() {}

// Update modifies rows (UPDATE t SET c = e, ... [WHERE p]).
type Update struct {
	Table string
	Set   []SetClause
	Where expr.Expr
}

// SetClause is one assignment in an UPDATE.
type SetClause struct {
	Col  string
	Expr expr.Expr
}

func (*Update) isStmt() {}

// Delete removes rows (DELETE FROM t [WHERE p]).
type Delete struct {
	Table string
	Where expr.Expr
}

func (*Delete) isStmt() {}

// CopyFormat is a COPY input format.
type CopyFormat string

// COPY formats.
const (
	CopyCSV  CopyFormat = "CSV"
	CopyAvro CopyFormat = "AVRO"
)

// Copy bulk-loads data into a table. The data source is either STDIN (the
// client streams data after issuing the statement — the VerticaCopyStream
// path S2V uses) or a node-local file path (the native bulk-load baseline of
// §4.7.3).
type Copy struct {
	Table     string
	Format    CopyFormat
	Direct    bool // write straight to ROS, bypassing the WOS
	RejectMax int64
	FromStdin bool
	FromPath  string
}

func (*Copy) isStmt() {}

// Begin starts an explicit transaction.
type Begin struct{}

func (*Begin) isStmt() {}

// Commit commits the current transaction.
type Commit struct{}

func (*Commit) isStmt() {}

// Rollback aborts the current transaction.
type Rollback struct{}

func (*Rollback) isStmt() {}

// PoolParams carries the optional clauses of CREATE/ALTER RESOURCE POOL.
// Nil pointers mean "clause absent" so ALTER can change one knob without
// resetting the others.
type PoolParams struct {
	MemoryBytes    *int64         // MEMORYSIZE '100M' | bytes | NONE (0 = unlimited)
	MaxConcurrency *int           // MAXCONCURRENCY n | NONE (0 = unlimited)
	MaxQueueDepth  *int           // MAXQUEUEDEPTH n | NONE (-1 = unlimited, 0 = never queue)
	QueueTimeout   *time.Duration // QUEUETIMEOUT secs | 'duration' | NONE (0 = wait forever)
}

// CreateResourcePool creates a named admission-control pool.
type CreateResourcePool struct {
	Name        string
	IfNotExists bool
	Params      PoolParams
}

func (*CreateResourcePool) isStmt() {}

// AlterResourcePool changes the named pool's admission policy; only the
// clauses present are modified.
type AlterResourcePool struct {
	Name   string
	Params PoolParams
}

func (*AlterResourcePool) isStmt() {}

// DropResourcePool removes a pool. The built-in general pool is protected.
type DropResourcePool struct {
	Name     string
	IfExists bool
}

func (*DropResourcePool) isStmt() {}

// Set assigns a session parameter: SET [SESSION] <name> = <value>.
// The only parameter today is RESOURCE_POOL.
type Set struct {
	Name  string
	Value string
}

func (*Set) isStmt() {}
