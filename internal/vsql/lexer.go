// Package vsql implements the SQL dialect the engine speaks: the statements
// the connector generates (hash-range SELECTs pinned AT EPOCH, the S2V
// status-table UPDATEs, COPY, transactional control) plus enough DDL/DML/query
// surface for the examples and the baselines (CREATE/DROP/ALTER TABLE,
// views, INSERT/UPDATE/DELETE, aggregates, GROUP BY, a two-table equi-join,
// and Vertica-style UDx calls with USING PARAMETERS).
package vsql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation and operators
)

type token struct {
	kind tokKind
	text string // identifiers are kept verbatim; upper() for keyword checks
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			seenDot, seenExp := false, false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch >= '0' && ch <= '9' {
					l.pos++
				} else if ch == '.' && !seenDot && !seenExp {
					seenDot = true
					l.pos++
				} else if (ch == 'e' || ch == 'E') && !seenExp && l.pos > start {
					seenExp = true
					l.pos++
					if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
						l.pos++
					}
				} else {
					break
				}
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("vsql: unterminated string literal at %d", start)
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			// Multi-char operators first.
			two := ""
			if l.pos+1 < len(l.src) {
				two = l.src[l.pos : l.pos+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=":
				l.toks = append(l.toks, token{kind: tokOp, text: two, pos: start})
				l.pos += 2
				continue
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '.', ';':
				l.toks = append(l.toks, token{kind: tokOp, text: string(c), pos: start})
				l.pos++
			default:
				return nil, fmt.Errorf("vsql: unexpected character %q at %d", c, start)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
