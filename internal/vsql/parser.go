package vsql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vsfabric/internal/expr"
	"vsfabric/internal/types"
)

// Parse parses one SQL statement. Trailing semicolons are allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("vsql: unexpected trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// acceptKw consumes the next token if it is the given keyword.
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

// accept consumes the next token if it is the given operator.
func (p *parser) accept(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("vsql: expected %s near %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expect(op string) error {
	if !p.accept(op) {
		return fmt.Errorf("vsql: expected %q near %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("vsql: expected identifier near %q", t.text)
	}
	p.pos++
	name := t.text
	// Qualified name a.b (v_catalog.nodes, alias.col).
	for p.accept(".") {
		t = p.peek()
		if t.kind != tokIdent {
			return "", fmt.Errorf("vsql: expected identifier after '.' near %q", t.text)
		}
		p.pos++
		name += "." + t.text
	}
	return name, nil
}

func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKw("SELECT"), p.isKw("AT"):
		return p.parseSelect()
	case p.isKw("PROFILE"):
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Profile{Select: sel}, nil
	case p.isKw("EXPLAIN"):
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Select: sel}, nil
	case p.isKw("CREATE"):
		return p.parseCreate()
	case p.isKw("DROP"):
		return p.parseDrop()
	case p.isKw("ALTER"):
		return p.parseAlter()
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	case p.isKw("COPY"):
		return p.parseCopy()
	case p.isKw("BEGIN"):
		p.next()
		p.acceptKw("TRANSACTION")
		return &Begin{}, nil
	case p.isKw("COMMIT"):
		p.next()
		return &Commit{}, nil
	case p.isKw("ROLLBACK"), p.isKw("ABORT"):
		p.next()
		return &Rollback{}, nil
	case p.isKw("SET"):
		return p.parseSet()
	default:
		return nil, fmt.Errorf("vsql: unrecognized statement near %q", p.peek().text)
	}
}

// parseSelect parses [AT EPOCH n|LATEST] SELECT items [FROM t [JOIN u ON
// a=b]...] [WHERE p] [GROUP BY cols] [LIMIT n].
func (p *parser) parseSelect() (*Select, error) {
	sel := &Select{Limit: -1}
	if p.acceptKw("AT") {
		if err := p.expectKw("EPOCH"); err != nil {
			return nil, err
		}
		er := &EpochRef{}
		if p.acceptKw("LATEST") {
			er.Latest = true
		} else {
			t := p.peek()
			if t.kind != tokNumber {
				return nil, fmt.Errorf("vsql: expected epoch number near %q", t.text)
			}
			p.pos++
			n, err := strconv.ParseUint(t.text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vsql: bad epoch %q", t.text)
			}
			er.N = n
		}
		sel.AtEpoch = er
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, *item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = tr
		for p.acceptKw("JOIN") || p.acceptKw("INNER") {
			p.acceptKw("JOIN")
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			lc, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rc, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, &JoinClause{Right: *right, LeftCol: lc, RightCol: rc})
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("vsql: expected LIMIT count near %q", t.text)
		}
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("vsql: bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	tr := &TableRef{Name: name}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr.Alias = a
	} else if t := p.peek(); t.kind == tokIdent && !isReserved(t.text) {
		tr.Alias = t.text
		p.pos++
	}
	return tr, nil
}

var reserved = map[string]bool{
	"WHERE": true, "GROUP": true, "LIMIT": true, "JOIN": true, "INNER": true,
	"ON": true, "AS": true, "FROM": true, "AND": true, "OR": true, "NOT": true,
	"ORDER": true, "SET": true, "VALUES": true, "USING": true, "AT": true,
}

func isReserved(s string) bool { return reserved[strings.ToUpper(s)] }

func (p *parser) parseSelectItem() (*SelectItem, error) {
	if p.accept("*") {
		return &SelectItem{Star: true}, nil
	}
	// Aggregate?
	if t := p.peek(); t.kind == tokIdent {
		up := strings.ToUpper(t.text)
		switch AggFn(up) {
		case AggCount, AggSum, AggAvg, AggMin, AggMax:
			if p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "(" {
				p.pos += 2 // fn (
				item := &SelectItem{Agg: AggFn(up)}
				if p.accept("*") {
					if item.Agg != AggCount {
						return nil, fmt.Errorf("vsql: %s(*) is not valid", up)
					}
				} else {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Arg = arg
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				p.parseAlias(item)
				return item, nil
			}
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	p.parseAlias(item)
	return item, nil
}

func (p *parser) parseAlias(item *SelectItem) {
	if p.acceptKw("AS") {
		if t := p.peek(); t.kind == tokIdent {
			item.Alias = t.text
			p.pos++
		}
	} else if t := p.peek(); t.kind == tokIdent && !isReserved(t.text) {
		item.Alias = t.text
		p.pos++
	}
}

// Expression grammar: or_expr := and_expr (OR and_expr)* ; and_expr :=
// not_expr (AND not_expr)* ; not_expr := [NOT] cmp ; cmp := add ((=|<>|...)
// add | IS [NOT] NULL)? ; add := mul ((+|-) mul)* ; mul := primary ((*|/)
// primary)*.
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{E: l, Negate: neg}, nil
	}
	ops := map[string]expr.CmpOp{"=": expr.EQ, "<>": expr.NE, "!=": expr.NE, "<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE}
	if t := p.peek(); t.kind == tokOp {
		if op, ok := ops[t.text]; ok {
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.Cmp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.accept("+"):
			op = expr.Add
		case p.accept("-"):
			op = expr.Sub
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &expr.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch {
		case p.accept("*"):
			op = expr.Mul
		case p.accept("/"):
			op = expr.Div
		default:
			return l, nil
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &expr.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return &expr.Lit{V: types.IntValue(n)}, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("vsql: bad number %q", t.text)
		}
		return &expr.Lit{V: types.FloatValue(f)}, nil
	case t.kind == tokString:
		p.pos++
		return &expr.Lit{V: types.StringValue(t.text)}, nil
	case t.kind == tokOp && t.text == "-":
		p.pos++
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &expr.Arith{Op: expr.Sub, L: &expr.Lit{V: types.IntValue(0)}, R: e}, nil
	case t.kind == tokOp && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		if isReserved(t.text) {
			return nil, fmt.Errorf("vsql: unexpected keyword %q in expression", t.text)
		}
		switch strings.ToUpper(t.text) {
		case "NULL":
			p.pos++
			return &expr.Lit{V: types.NullValue(types.Varchar)}, nil
		case "TRUE":
			p.pos++
			return &expr.Lit{V: types.BoolValue(true)}, nil
		case "FALSE":
			p.pos++
			return &expr.Lit{V: types.BoolValue(false)}, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if !p.accept("(") {
			return &expr.Col{Name: name}, nil
		}
		return p.parseCall(name)
	default:
		return nil, fmt.Errorf("vsql: unexpected token %q in expression", t.text)
	}
}

// parseCall parses the argument list of name(, having consumed "name(".
// It recognizes the engine builtins HASH and MOD and otherwise produces a
// generic FuncCall with optional USING PARAMETERS.
func (p *parser) parseCall(name string) (expr.Expr, error) {
	var args []expr.Expr
	params := map[string]string{}
	star := false
	if !p.accept(")") {
		if p.accept("*") {
			star = true
		} else {
			for {
				if p.acceptKw("USING") {
					if err := p.parseUsingParams(params); err != nil {
						return nil, err
					}
					break
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(",") {
					if p.acceptKw("USING") {
						if err := p.parseUsingParams(params); err != nil {
							return nil, err
						}
					}
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	switch strings.ToUpper(name) {
	case "HASH":
		if star {
			return &expr.HashFn{}, nil
		}
		return &expr.HashFn{Args: args}, nil
	case "MOD":
		if len(args) != 2 {
			return nil, fmt.Errorf("vsql: MOD takes 2 arguments, got %d", len(args))
		}
		return &expr.ModFn{X: args[0], Y: args[1]}, nil
	default:
		if star {
			return nil, fmt.Errorf("vsql: %s(*) is not valid here", name)
		}
		fc := &expr.FuncCall{Name: strings.ToUpper(name), Args: args}
		if len(params) > 0 {
			fc.Params = params
		}
		return fc, nil
	}
}

// parseUsingParams parses PARAMETERS k='v' [, k2='v2' ...] after USING.
func (p *parser) parseUsingParams(params map[string]string) error {
	if err := p.expectKw("PARAMETERS"); err != nil {
		return err
	}
	for {
		k, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		t := p.next()
		switch t.kind {
		case tokString, tokNumber, tokIdent:
			params[strings.ToLower(k)] = t.text
		default:
			return fmt.Errorf("vsql: bad parameter value near %q", t.text)
		}
		if !p.accept(",") {
			return nil
		}
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	temp := p.acceptKw("TEMP") || p.acceptKw("TEMPORARY")
	switch {
	case !temp && p.acceptKw("RESOURCE"):
		if err := p.expectKw("POOL"); err != nil {
			return nil, err
		}
		cp := &CreateResourcePool{}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			cp.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		cp.Name = name
		if err := p.parsePoolParams(&cp.Params); err != nil {
			return nil, err
		}
		return cp, nil
	case p.acceptKw("TABLE"):
		ct := &CreateTable{Temp: temp}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			ct.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct.Name = name
		if p.acceptKw("LIKE") {
			like, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct.Like = like
		} else {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				cn, err := p.ident()
				if err != nil {
					return nil, err
				}
				tn, err := p.typeName()
				if err != nil {
					return nil, err
				}
				ct.Cols = append(ct.Cols, ColumnDef{Name: cn, Type: tn})
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		// Segmentation clauses.
		for {
			switch {
			case p.acceptKw("SEGMENTED"):
				if err := p.expectKw("BY"); err != nil {
					return nil, err
				}
				if err := p.expectKw("HASH"); err != nil {
					return nil, err
				}
				if err := p.expect("("); err != nil {
					return nil, err
				}
				for {
					c, err := p.ident()
					if err != nil {
						return nil, err
					}
					ct.SegCols = append(ct.SegCols, c)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				p.acceptKw("ALL")
				p.acceptKw("NODES")
			case p.acceptKw("UNSEGMENTED"):
				ct.Unsegmented = true
				p.acceptKw("ALL")
				p.acceptKw("NODES")
			case p.acceptKw("KSAFE"):
				t := p.peek()
				if t.kind != tokNumber {
					return nil, fmt.Errorf("vsql: expected KSAFE value near %q", t.text)
				}
				p.pos++
				k, err := strconv.Atoi(t.text)
				if err != nil {
					return nil, fmt.Errorf("vsql: bad KSAFE %q", t.text)
				}
				ct.KSafety = k
			default:
				return ct, nil
			}
		}
	case p.acceptKw("VIEW"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		start := p.peek().pos
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		end := len(p.src)
		if !p.atEOF() {
			end = p.peek().pos
		}
		return &CreateView{Name: name, SelectSQL: strings.TrimRight(strings.TrimSpace(p.src[start:end]), ";"), Stmt: sel}, nil
	default:
		return nil, fmt.Errorf("vsql: expected TABLE or VIEW after CREATE near %q", p.peek().text)
	}
}

func (p *parser) typeName() (types.Type, error) {
	n, err := p.ident()
	if err != nil {
		return types.Unknown, err
	}
	if strings.EqualFold(n, "DOUBLE") {
		p.acceptKw("PRECISION")
	}
	// Optional length, e.g. VARCHAR(80).
	if p.accept("(") {
		if t := p.peek(); t.kind == tokNumber {
			p.pos++
		}
		if err := p.expect(")"); err != nil {
			return types.Unknown, err
		}
	}
	return types.ParseType(n)
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	isView := false
	switch {
	case p.acceptKw("RESOURCE"):
		if err := p.expectKw("POOL"); err != nil {
			return nil, err
		}
		dp := &DropResourcePool{}
		if p.acceptKw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			dp.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		dp.Name = name
		return dp, nil
	case p.acceptKw("TABLE"):
	case p.acceptKw("VIEW"):
		isView = true
	default:
		return nil, fmt.Errorf("vsql: expected TABLE or VIEW after DROP near %q", p.peek().text)
	}
	ifExists := false
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if isView {
		return &DropView{Name: name, IfExists: ifExists}, nil
	}
	return &DropTable{Name: name, IfExists: ifExists}, nil
}

func (p *parser) parseAlter() (Statement, error) {
	p.next() // ALTER
	if p.acceptKw("CLUSTER") {
		return p.parseAlterCluster()
	}
	if p.acceptKw("RESOURCE") {
		if err := p.expectKw("POOL"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ap := &AlterResourcePool{Name: name}
		if err := p.parsePoolParams(&ap.Params); err != nil {
			return nil, err
		}
		if ap.Params == (PoolParams{}) {
			return nil, fmt.Errorf("vsql: ALTER RESOURCE POOL %s changes nothing", name)
		}
		return ap, nil
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("RENAME"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TO"); err != nil {
		return nil, err
	}
	newName, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &AlterRename{Name: name, NewName: newName}, nil
}

// parseAlterCluster parses the membership statements:
//
//	ALTER CLUSTER ADD NODE
//	ALTER CLUSTER REMOVE NODE <id>
func (p *parser) parseAlterCluster() (Statement, error) {
	switch {
	case p.acceptKw("ADD"):
		if err := p.expectKw("NODE"); err != nil {
			return nil, err
		}
		return &AlterCluster{Action: AlterClusterAdd}, nil
	case p.acceptKw("REMOVE"):
		if err := p.expectKw("NODE"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("vsql: expected node id near %q", t.text)
		}
		p.pos++
		id, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("vsql: bad node id %q", t.text)
		}
		return &AlterCluster{Action: AlterClusterRemove, Node: id}, nil
	default:
		return nil, fmt.Errorf("vsql: expected ADD or REMOVE after ALTER CLUSTER, near %q", p.peek().text)
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.accept("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if p.isKw("SELECT") || p.isKw("AT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: name}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, SetClause{Col: c, Expr: e})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

// parseCopy parses COPY t FROM STDIN|'path' [FORMAT CSV|AVRO] [DIRECT]
// [REJECTMAX n].
func (p *parser) parseCopy() (Statement, error) {
	p.next() // COPY
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cp := &Copy{Table: name, Format: CopyCSV}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	p.acceptKw("LOCAL")
	if p.acceptKw("STDIN") {
		cp.FromStdin = true
	} else if t := p.peek(); t.kind == tokString {
		p.pos++
		cp.FromPath = t.text
	} else {
		return nil, fmt.Errorf("vsql: expected STDIN or file path after COPY ... FROM near %q", t.text)
	}
	for {
		switch {
		case p.acceptKw("FORMAT"):
			switch {
			case p.acceptKw("CSV"):
				cp.Format = CopyCSV
			case p.acceptKw("AVRO"):
				cp.Format = CopyAvro
			default:
				return nil, fmt.Errorf("vsql: unknown COPY format near %q", p.peek().text)
			}
		case p.acceptKw("DIRECT"):
			cp.Direct = true
		case p.acceptKw("REJECTMAX"):
			t := p.peek()
			if t.kind != tokNumber {
				return nil, fmt.Errorf("vsql: expected REJECTMAX count near %q", t.text)
			}
			p.pos++
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("vsql: bad REJECTMAX %q", t.text)
			}
			cp.RejectMax = n
		default:
			return cp, nil
		}
	}
}

// parsePoolParams parses the optional CREATE/ALTER RESOURCE POOL clauses in
// any order: MEMORYSIZE '100M'|bytes|NONE, MAXCONCURRENCY n|NONE,
// MAXQUEUEDEPTH n|NONE, QUEUETIMEOUT secs|'30s'|NONE.
func (p *parser) parsePoolParams(out *PoolParams) error {
	for {
		switch {
		case p.acceptKw("MEMORYSIZE"):
			v, err := p.poolMemSize()
			if err != nil {
				return err
			}
			out.MemoryBytes = &v
		case p.acceptKw("MAXCONCURRENCY"):
			v, err := p.poolCount("MAXCONCURRENCY", 0)
			if err != nil {
				return err
			}
			out.MaxConcurrency = &v
		case p.acceptKw("MAXQUEUEDEPTH"):
			v, err := p.poolCount("MAXQUEUEDEPTH", -1)
			if err != nil {
				return err
			}
			out.MaxQueueDepth = &v
		case p.acceptKw("QUEUETIMEOUT"):
			v, err := p.poolTimeout()
			if err != nil {
				return err
			}
			out.QueueTimeout = &v
		default:
			return nil
		}
	}
}

// poolMemSize parses NONE (0 = unlimited), a byte count, or a quoted size
// like '100M' / '4G' / '512K' (optionally with a trailing B).
func (p *parser) poolMemSize() (int64, error) {
	t := p.peek()
	switch {
	case p.acceptKw("NONE"):
		return 0, nil
	case t.kind == tokNumber:
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("vsql: bad MEMORYSIZE %q", t.text)
		}
		return n, nil
	case t.kind == tokString:
		p.pos++
		n, err := parseMemSize(t.text)
		if err != nil {
			return 0, err
		}
		return n, nil
	default:
		return 0, fmt.Errorf("vsql: expected MEMORYSIZE value near %q", t.text)
	}
}

// parseMemSize converts "100M"-style size literals to bytes.
func parseMemSize(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	s = strings.TrimSuffix(s, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "T"):
		mult, s = 1<<40, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("vsql: bad memory size %q", orig)
	}
	return n * mult, nil
}

// poolCount parses NONE (mapped to the given unlimited value) or a
// non-negative integer.
func (p *parser) poolCount(clause string, none int) (int, error) {
	if p.acceptKw("NONE") {
		return none, nil
	}
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("vsql: expected %s count near %q", clause, t.text)
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("vsql: bad %s %q", clause, t.text)
	}
	return n, nil
}

// poolTimeout parses NONE (0 = wait forever), a number of seconds, or a
// quoted Go duration like '750ms'.
func (p *parser) poolTimeout() (time.Duration, error) {
	if p.acceptKw("NONE") {
		return 0, nil
	}
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		secs, err := strconv.ParseFloat(t.text, 64)
		if err != nil || secs < 0 {
			return 0, fmt.Errorf("vsql: bad QUEUETIMEOUT %q", t.text)
		}
		return time.Duration(secs * float64(time.Second)), nil
	case tokString:
		p.pos++
		d, err := time.ParseDuration(t.text)
		if err != nil || d < 0 {
			return 0, fmt.Errorf("vsql: bad QUEUETIMEOUT %q", t.text)
		}
		return d, nil
	default:
		return 0, fmt.Errorf("vsql: expected QUEUETIMEOUT value near %q", t.text)
	}
}

// parseSet parses SET [SESSION] <name> = <ident|string|number>.
func (p *parser) parseSet() (Statement, error) {
	p.next() // SET
	p.acceptKw("SESSION")
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	t := p.peek()
	switch t.kind {
	case tokIdent, tokString, tokNumber:
		p.pos++
		return &Set{Name: name, Value: t.text}, nil
	default:
		return nil, fmt.Errorf("vsql: expected value for SET %s near %q", name, t.text)
	}
}
