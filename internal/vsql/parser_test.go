package vsql

import (
	"testing"

	"vsfabric/internal/expr"
	"vsfabric/internal/types"
)

func parseSelect(t *testing.T, sql string) *Select {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", sql, st)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseSelect(t, "SELECT a, b FROM t WHERE a > 5 LIMIT 10")
	if len(sel.Items) != 2 || sel.From.Name != "t" || sel.Limit != 10 {
		t.Errorf("bad parse: %+v", sel)
	}
	if sel.Where == nil {
		t.Error("WHERE not parsed")
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t")
	if !sel.Items[0].Star {
		t.Error("star not parsed")
	}
}

func TestParseAtEpoch(t *testing.T) {
	sel := parseSelect(t, "AT EPOCH 42 SELECT * FROM t")
	if sel.AtEpoch == nil || sel.AtEpoch.N != 42 || sel.AtEpoch.Latest {
		t.Errorf("AT EPOCH parse: %+v", sel.AtEpoch)
	}
	sel = parseSelect(t, "AT EPOCH LATEST SELECT * FROM t")
	if sel.AtEpoch == nil || !sel.AtEpoch.Latest {
		t.Errorf("AT EPOCH LATEST parse: %+v", sel.AtEpoch)
	}
}

// The exact query shape V2S generates (§3.1.2).
func TestParseV2SPartitionQuery(t *testing.T) {
	sql := "AT EPOCH 7 SELECT c0, c1 FROM d1 WHERE HASH(c0) >= 1073741824 AND HASH(c0) < 2147483648"
	sel := parseSelect(t, sql)
	and, ok := sel.Where.(*expr.And)
	if !ok {
		t.Fatalf("WHERE is %T", sel.Where)
	}
	ge := and.L.(*expr.Cmp)
	if _, ok := ge.L.(*expr.HashFn); !ok {
		t.Error("left side of range predicate should be HASH()")
	}
	if ge.Op != expr.GE {
		t.Error("expected >=")
	}
}

func TestParseSyntheticHash(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM v WHERE MOD(HASH(*), 8) = 3")
	cmp, ok := sel.Where.(*expr.Cmp)
	if !ok {
		t.Fatalf("WHERE is %T", sel.Where)
	}
	mod, ok := cmp.L.(*expr.ModFn)
	if !ok {
		t.Fatalf("left is %T, want ModFn", cmp.L)
	}
	h, ok := mod.X.(*expr.HashFn)
	if !ok || len(h.Args) != 0 {
		t.Error("MOD arg should be HASH(*)")
	}
}

func TestParseAggregates(t *testing.T) {
	sel := parseSelect(t, "SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t")
	if len(sel.Items) != 5 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[0].Agg != AggCount || sel.Items[0].Arg != nil {
		t.Error("COUNT(*) not parsed")
	}
	if sel.Items[1].Agg != AggSum || sel.Items[1].Arg == nil {
		t.Error("SUM(x) not parsed")
	}
}

func TestParseGroupBy(t *testing.T) {
	sel := parseSelect(t, "SELECT k, COUNT(*) AS n FROM t GROUP BY k")
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "k" {
		t.Errorf("GroupBy = %v", sel.GroupBy)
	}
	if sel.Items[1].Alias != "n" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
}

func TestParseJoin(t *testing.T) {
	sel := parseSelect(t, "SELECT a.x, b.y FROM ta a JOIN tb b ON a.k = b.k WHERE a.x > 0")
	if len(sel.Joins) != 1 {
		t.Fatalf("joins = %d, want 1", len(sel.Joins))
	}
	jc := sel.Joins[0]
	if sel.From.Alias != "a" || jc.Right.Alias != "b" {
		t.Errorf("aliases: %q %q", sel.From.Alias, jc.Right.Alias)
	}
	if jc.LeftCol != "a.k" || jc.RightCol != "b.k" {
		t.Errorf("on: %q = %q", jc.LeftCol, jc.RightCol)
	}
}

func TestParseMultiJoin(t *testing.T) {
	sel := parseSelect(t, "SELECT o.id FROM o JOIN c ON o.cid = c.cid INNER JOIN r ON c.rid = r.rid WHERE o.amt > 5")
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(sel.Joins))
	}
	if sel.Joins[0].Right.Name != "c" || sel.Joins[1].Right.Name != "r" {
		t.Errorf("join targets: %q %q", sel.Joins[0].Right.Name, sel.Joins[1].Right.Name)
	}
	if sel.Joins[1].LeftCol != "c.rid" || sel.Joins[1].RightCol != "r.rid" {
		t.Errorf("second ON: %q = %q", sel.Joins[1].LeftCol, sel.Joins[1].RightCol)
	}
	if sel.Where == nil {
		t.Error("WHERE lost after join list")
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT grp, COUNT(*) FROM t WHERE v > 3 GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*Explain)
	if !ok {
		t.Fatalf("statement = %T, want *Explain", stmt)
	}
	if ex.Select == nil || ex.Select.From == nil || ex.Select.From.Name != "t" {
		t.Errorf("wrapped select not parsed: %+v", ex.Select)
	}
}

// Vertica UDx invocation with USING PARAMETERS, §3.3's PMMLPredict example.
func TestParseUDxWithParameters(t *testing.T) {
	sql := "SELECT PMMLPredict(sepal_length, sepal_width USING PARAMETERS model_name='regression') FROM IrisTable"
	sel := parseSelect(t, sql)
	fc, ok := sel.Items[0].Expr.(*expr.FuncCall)
	if !ok {
		t.Fatalf("item is %T", sel.Items[0].Expr)
	}
	if fc.Name != "PMMLPREDICT" || len(fc.Args) != 2 {
		t.Errorf("call: %s(%d args)", fc.Name, len(fc.Args))
	}
	if fc.Params["model_name"] != "regression" {
		t.Errorf("params = %v", fc.Params)
	}
}

func TestParseFromlessSelect(t *testing.T) {
	sel := parseSelect(t, "SELECT LAST_EPOCH()")
	if sel.From != nil {
		t.Error("FROM should be nil")
	}
	if _, ok := sel.Items[0].Expr.(*expr.FuncCall); !ok {
		t.Error("LAST_EPOCH() should parse as FuncCall")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE d1 (id INTEGER, x FLOAT, s VARCHAR(80), ok BOOLEAN) SEGMENTED BY HASH(id) ALL NODES KSAFE 1")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "d1" || len(ct.Cols) != 4 || ct.Cols[2].Type != types.Varchar {
		t.Errorf("create: %+v", ct)
	}
	if len(ct.SegCols) != 1 || ct.SegCols[0] != "id" || ct.KSafety != 1 {
		t.Errorf("segmentation: %+v", ct)
	}
}

func TestParseCreateTempTableLike(t *testing.T) {
	st, err := Parse("CREATE TEMP TABLE staging LIKE target")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if !ct.Temp || ct.Like != "target" {
		t.Errorf("create like: %+v", ct)
	}
}

func TestParseUnsegmented(t *testing.T) {
	st, err := Parse("CREATE TABLE u (a INTEGER) UNSEGMENTED ALL NODES")
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*CreateTable).Unsegmented {
		t.Error("UNSEGMENTED not parsed")
	}
}

func TestParseDropAndAlter(t *testing.T) {
	st, err := Parse("DROP TABLE IF EXISTS t")
	if err != nil || !st.(*DropTable).IfExists {
		t.Errorf("drop: %v %v", st, err)
	}
	st, err = Parse("ALTER TABLE a RENAME TO b")
	if err != nil {
		t.Fatal(err)
	}
	ar := st.(*AlterRename)
	if ar.Name != "a" || ar.NewName != "b" {
		t.Errorf("alter: %+v", ar)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Rows) != 2 || len(ins.Cols) != 2 {
		t.Errorf("insert: %+v", ins)
	}
}

func TestParseUpdate(t *testing.T) {
	st, err := Parse("UPDATE s2v_status SET done = TRUE WHERE task_id = 3 AND done = FALSE")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*Update)
	if up.Table != "s2v_status" || len(up.Set) != 1 || up.Where == nil {
		t.Errorf("update: %+v", up)
	}
}

func TestParseDelete(t *testing.T) {
	st, err := Parse("DELETE FROM t WHERE a < 0")
	if err != nil || st.(*Delete).Where == nil {
		t.Errorf("delete: %v %v", st, err)
	}
}

func TestParseCopy(t *testing.T) {
	st, err := Parse("COPY target FROM STDIN FORMAT AVRO DIRECT REJECTMAX 100")
	if err != nil {
		t.Fatal(err)
	}
	cp := st.(*Copy)
	if !cp.FromStdin || cp.Format != CopyAvro || !cp.Direct || cp.RejectMax != 100 {
		t.Errorf("copy: %+v", cp)
	}
	st, err = Parse("COPY t FROM LOCAL '/data/part1.csv' FORMAT CSV")
	if err != nil {
		t.Fatal(err)
	}
	cp = st.(*Copy)
	if cp.FromPath != "/data/part1.csv" || cp.Format != CopyCSV {
		t.Errorf("copy file: %+v", cp)
	}
}

func TestParseCreateView(t *testing.T) {
	st, err := Parse("CREATE VIEW v AS SELECT k, COUNT(*) FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if cv.Name != "v" || cv.Stmt == nil {
		t.Errorf("view: %+v", cv)
	}
	if cv.SelectSQL != "SELECT k, COUNT(*) FROM t GROUP BY k" {
		t.Errorf("view SQL = %q", cv.SelectSQL)
	}
}

func TestParseTxnControl(t *testing.T) {
	for sql, want := range map[string]string{
		"BEGIN": "*vsql.Begin", "COMMIT": "*vsql.Commit", "ROLLBACK": "*vsql.Rollback", "ABORT": "*vsql.Rollback",
	} {
		st, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := typeName(st); got != want {
			t.Errorf("%s -> %s, want %s", sql, got, want)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *Begin:
		return "*vsql.Begin"
	case *Commit:
		return "*vsql.Commit"
	case *Rollback:
		return "*vsql.Rollback"
	default:
		return "?"
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "SELEC * FROM t", "SELECT FROM t", "SELECT * FROM", "CREATE TABLE",
		"INSERT INTO t VALUES", "COPY t FROM", "SELECT * FROM t WHERE",
		"SELECT 'unterminated FROM t", "SELECT SUM(*) FROM t",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t WHERE name = 'o''brien'")
	cmp := sel.Where.(*expr.Cmp)
	lit := cmp.R.(*expr.Lit)
	if lit.V.S != "o'brien" {
		t.Errorf("escaped string = %q", lit.V.S)
	}
}

func TestParseComments(t *testing.T) {
	sel := parseSelect(t, "SELECT * -- load everything\nFROM t")
	if sel.From.Name != "t" {
		t.Error("comment handling broken")
	}
}

func TestParseNumberForms(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t WHERE x > 1.5e-3 AND a = -2")
	if sel.Where == nil {
		t.Fatal("where nil")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT * FROM t;"); err != nil {
		t.Errorf("trailing semicolon should parse: %v", err)
	}
	if _, err := Parse("SELECT * FROM t; SELECT 1"); err == nil {
		t.Error("two statements should fail")
	}
}
