package vsql

import (
	"testing"
	"time"
)

func TestParseCreateResourcePool(t *testing.T) {
	st, err := Parse("CREATE RESOURCE POOL etl MEMORYSIZE '100M' MAXCONCURRENCY 8 MAXQUEUEDEPTH 32 QUEUETIMEOUT 2")
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := st.(*CreateResourcePool)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if cp.Name != "etl" || cp.IfNotExists {
		t.Fatalf("name/ifnotexists: %+v", cp)
	}
	if cp.Params.MemoryBytes == nil || *cp.Params.MemoryBytes != 100<<20 {
		t.Fatalf("memory: %+v", cp.Params.MemoryBytes)
	}
	if cp.Params.MaxConcurrency == nil || *cp.Params.MaxConcurrency != 8 {
		t.Fatalf("concurrency: %+v", cp.Params.MaxConcurrency)
	}
	if cp.Params.MaxQueueDepth == nil || *cp.Params.MaxQueueDepth != 32 {
		t.Fatalf("depth: %+v", cp.Params.MaxQueueDepth)
	}
	if cp.Params.QueueTimeout == nil || *cp.Params.QueueTimeout != 2*time.Second {
		t.Fatalf("timeout: %+v", cp.Params.QueueTimeout)
	}
}

func TestParseCreatePoolDefaultsAndNone(t *testing.T) {
	st, err := Parse("CREATE RESOURCE POOL IF NOT EXISTS p MEMORYSIZE NONE MAXQUEUEDEPTH NONE QUEUETIMEOUT NONE")
	if err != nil {
		t.Fatal(err)
	}
	cp := st.(*CreateResourcePool)
	if !cp.IfNotExists {
		t.Fatal("IF NOT EXISTS not parsed")
	}
	if *cp.Params.MemoryBytes != 0 || *cp.Params.MaxQueueDepth != -1 || *cp.Params.QueueTimeout != 0 {
		t.Fatalf("NONE values: %+v", cp.Params)
	}
	if cp.Params.MaxConcurrency != nil {
		t.Fatal("absent clause should stay nil")
	}
}

func TestParseMemSizes(t *testing.T) {
	cases := map[string]int64{
		"'64K'": 64 << 10, "'100M'": 100 << 20, "'4G'": 4 << 30, "'1T'": 1 << 40,
		"'512KB'": 512 << 10, "1048576": 1 << 20,
	}
	for lit, want := range cases {
		st, err := Parse("CREATE RESOURCE POOL x MEMORYSIZE " + lit)
		if err != nil {
			t.Fatalf("%s: %v", lit, err)
		}
		if got := *st.(*CreateResourcePool).Params.MemoryBytes; got != want {
			t.Errorf("%s = %d, want %d", lit, got, want)
		}
	}
	if _, err := Parse("CREATE RESOURCE POOL x MEMORYSIZE 'lots'"); err == nil {
		t.Error("bad size literal should fail")
	}
}

func TestParseAlterDropResourcePool(t *testing.T) {
	st, err := Parse("ALTER RESOURCE POOL etl MAXCONCURRENCY NONE QUEUETIMEOUT '750ms'")
	if err != nil {
		t.Fatal(err)
	}
	ap := st.(*AlterResourcePool)
	if ap.Name != "etl" || *ap.Params.MaxConcurrency != 0 || *ap.Params.QueueTimeout != 750*time.Millisecond {
		t.Fatalf("%+v", ap)
	}
	if ap.Params.MemoryBytes != nil || ap.Params.MaxQueueDepth != nil {
		t.Fatal("untouched clauses must be nil")
	}
	if _, err := Parse("ALTER RESOURCE POOL etl"); err == nil {
		t.Error("ALTER with no clauses should fail")
	}

	st, err = Parse("DROP RESOURCE POOL IF EXISTS etl")
	if err != nil {
		t.Fatal(err)
	}
	dp := st.(*DropResourcePool)
	if dp.Name != "etl" || !dp.IfExists {
		t.Fatalf("%+v", dp)
	}
}

func TestParseSet(t *testing.T) {
	for _, sql := range []string{
		"SET RESOURCE_POOL = etl",
		"SET SESSION RESOURCE_POOL = 'etl'",
		"set session resource_pool = etl;",
	} {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		s := st.(*Set)
		if s.Value != "etl" {
			t.Fatalf("%s → %+v", sql, s)
		}
	}
	if _, err := Parse("SET RESOURCE_POOL ="); err == nil {
		t.Error("missing value should fail")
	}
	// CREATE TEMP RESOURCE POOL is nonsense and must not parse.
	if _, err := Parse("CREATE TEMP RESOURCE POOL p"); err == nil {
		t.Error("TEMP RESOURCE POOL should fail")
	}
}
