// Package wal implements the engine's write-ahead log: an append-only file
// of length-prefixed, CRC32-framed records covering COPY/INSERT/DELETE, DDL,
// and transaction commit/abort. Commit records are fsynced before the commit
// is acknowledged, so replaying the log after a crash (redo committed
// records, discard provisional tags) reproduces exactly the last durable
// epoch. A checkpoint truncates the log by sealing it into a fresh file,
// carrying over the records of still-uncommitted transactions so an
// in-flight COPY that commits after the checkpoint stays replayable.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Type identifies a WAL record.
type Type byte

// WAL record types.
const (
	// RecInsert carries rows written by COPY / INSERT under a provisional
	// tag. Direct distinguishes the ROS bulk path from the WOS trickle path.
	RecInsert Type = iota + 1
	// RecDelete carries the rows a DELETE/UPDATE marked under a provisional
	// tag, plus the snapshot epoch the statement read at (replay re-applies
	// the delete under the same visibility).
	RecDelete
	// RecCommit maps a provisional tag to its commit epoch. Fsynced.
	RecCommit
	// RecAbort discards a provisional tag.
	RecAbort
	// RecDDL carries a catalog operation (create/drop/rename table, views),
	// applied immediately on replay — mirroring the engine, where deferred
	// DDL runs in commit hooks that are not rolled back.
	RecDDL
	// RecCheckpoint opens a fresh log file, naming the durable epoch the
	// preceding checkpoint persisted.
	RecCheckpoint
)

func (t Type) String() string {
	switch t {
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecDDL:
		return "DDL"
	case RecCheckpoint:
		return "CHECKPOINT"
	default:
		return "?"
	}
}

// Record is one logical WAL entry.
type Record struct {
	Type   Type
	Tag    uint64 // provisional transaction tag (insert/delete/commit/abort)
	Epoch  uint64 // commit epoch, delete snapshot epoch, or durable epoch
	Op     byte   // DDL opcode (the engine defines the codes)
	Direct bool   // insert: ROS bulk path vs WOS trickle path
	Table  string // target table (insert/delete)
	Rows   []byte // storage.EncodeRows payload (insert/delete)
	DDL    []byte // DDL payload (engine-defined encoding)
}

var magic = []byte("VWAL0001")

// ErrCrashed is returned by every operation after a simulated crash
// (FailAfterRecords) tears the log.
var ErrCrashed = errors.New("wal: simulated crash")

// maxRecord bounds a single record's payload (guards ReadAll against garbage
// length prefixes).
const maxRecord = 1 << 30

func (r Record) encode() []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(r.Type))
	writeUvarint(&buf, r.Tag)
	writeUvarint(&buf, r.Epoch)
	buf.WriteByte(r.Op)
	if r.Direct {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	writeUvarint(&buf, uint64(len(r.Table)))
	buf.WriteString(r.Table)
	writeUvarint(&buf, uint64(len(r.Rows)))
	buf.Write(r.Rows)
	writeUvarint(&buf, uint64(len(r.DDL)))
	buf.Write(r.DDL)
	return buf.Bytes()
}

func decodeRecord(payload []byte) (Record, error) {
	r := bytes.NewReader(payload)
	var rec Record
	tb, err := r.ReadByte()
	if err != nil {
		return rec, err
	}
	rec.Type = Type(tb)
	if rec.Tag, err = binary.ReadUvarint(r); err != nil {
		return rec, err
	}
	if rec.Epoch, err = binary.ReadUvarint(r); err != nil {
		return rec, err
	}
	if rec.Op, err = r.ReadByte(); err != nil {
		return rec, err
	}
	db, err := r.ReadByte()
	if err != nil {
		return rec, err
	}
	rec.Direct = db != 0
	readBlob := func() ([]byte, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	tbl, err := readBlob()
	if err != nil {
		return rec, err
	}
	rec.Table = string(tbl)
	if rec.Rows, err = readBlob(); err != nil {
		return rec, err
	}
	if rec.DDL, err = readBlob(); err != nil {
		return rec, err
	}
	return rec, nil
}

// frame wraps an encoded record payload as [u32 len][u32 crc][payload].
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

type pendingRec struct {
	seq   uint64
	frame []byte
}

// Log is an open write-ahead log. Appends are serialized internally; commit
// records are flushed and fsynced before LogCommit returns.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	path   string
	seq    uint64 // append ordinal, used to order carried-over records
	sealed *Log   // non-nil after Seal: appends forward to the successor

	// pending holds the frames of records belonging to transactions that
	// have neither committed nor aborted, so a checkpoint can carry them
	// into the fresh log it truncates to.
	pending map[uint64][]pendingRec

	crashed   bool
	failAfter int64 // <0 = disabled; 0 = crash on next append

	// OnWrite and OnSync feed the observability counters (wal.bytes,
	// wal.records, wal.fsyncs). OnSync receives the measured fsync duration
	// so slow syncs can raise stall events. Set them before the log is
	// shared.
	OnWrite func(bytes int64)
	OnSync  func(d time.Duration)
}

// Open opens (or creates) a log for appending, writing the file header when
// the file is new.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{
		f:         f,
		w:         bufio.NewWriterSize(f, 1<<16),
		path:      path,
		pending:   make(map[uint64][]pendingRec),
		failAfter: -1,
	}
	if st.Size() == 0 {
		if _, err := l.w.Write(magic); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// Path returns the log's file path.
func (l *Log) Path() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.path
}

// FailAfterRecords installs the chaos hook: after n more successful appends,
// the next record is torn mid-frame and every subsequent operation returns
// ErrCrashed — the moral equivalent of SIGKILL between two sector writes.
func (l *Log) FailAfterRecords(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failAfter = int64(n)
}

// Append writes one record without forcing it to disk. Records tagged with a
// provisional transaction are tracked for checkpoint carryover until their
// commit or abort arrives.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec)
}

func (l *Log) appendLocked(rec Record) error {
	if l.sealed != nil {
		// The checkpoint moved the tail of the log to a successor file; a
		// statement that raced the swap lands there instead.
		return l.sealed.Append(rec)
	}
	if l.crashed {
		return ErrCrashed
	}
	fr := frame(rec.encode())
	if l.failAfter == 0 {
		// Simulated power cut: half the frame reaches the platter, then the
		// world ends.
		l.w.Write(fr[:len(fr)/2])
		l.w.Flush()
		l.crashed = true
		return ErrCrashed
	}
	if l.failAfter > 0 {
		l.failAfter--
	}
	if _, err := l.w.Write(fr); err != nil {
		return err
	}
	l.seq++
	if rec.Tag != 0 && (rec.Type == RecInsert || rec.Type == RecDelete) {
		l.pending[rec.Tag] = append(l.pending[rec.Tag], pendingRec{seq: l.seq, frame: fr})
	}
	if rec.Type == RecCommit || rec.Type == RecAbort {
		delete(l.pending, rec.Tag)
	}
	if l.OnWrite != nil {
		l.OnWrite(int64(len(fr)))
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.sealed != nil {
		return l.sealed.Sync()
	}
	if l.crashed {
		return ErrCrashed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	if l.OnSync != nil {
		l.OnSync(time.Since(start))
	}
	return nil
}

// LogCommit appends a commit record mapping tag to epoch and fsyncs: the
// transaction is durable iff this returns nil. Satisfies txn.CommitLog.
func (l *Log) LogCommit(tag, epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.appendLocked(Record{Type: RecCommit, Tag: tag, Epoch: epoch}); err != nil {
		return err
	}
	return l.syncLocked()
}

// LogAbort appends an abort record for tag (no fsync: an abort that never
// reaches disk is indistinguishable from a crash, and replay discards
// uncommitted tags either way). Satisfies txn.CommitLog.
func (l *Log) LogAbort(tag uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(Record{Type: RecAbort, Tag: tag})
}

// Seal redirects the log's future into next: the frames of still-uncommitted
// transactions are copied over in their original append order, and any
// appends that race the checkpoint's log swap are forwarded. The sealed file
// itself is frozen — the caller deletes it once the checkpoint manifest is
// durable.
func (l *Log) Seal(next *Log) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	if l.sealed != nil {
		return fmt.Errorf("wal: log already sealed")
	}
	var carry []pendingRec
	for _, frames := range l.pending {
		carry = append(carry, frames...)
	}
	sort.Slice(carry, func(i, j int) bool { return carry[i].seq < carry[j].seq })
	for _, p := range carry {
		payload := p.frame[8:]
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: carrying pending record: %w", err)
		}
		if err := next.Append(rec); err != nil {
			return err
		}
	}
	l.w.Flush()
	l.sealed = next
	l.pending = nil
	return nil
}

// Close flushes and closes the file (without fsync — callers needing
// durability call Sync first).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.crashed && l.sealed == nil {
		l.w.Flush()
	}
	return l.f.Close()
}

// ReadAll decodes every intact record in the log at path. A torn tail — a
// short header, a short payload, or a CRC mismatch on the final frames, the
// signature of a crash mid-append — ends the scan without error; replay
// proceeds with the durable prefix. A missing file yields no records.
func ReadAll(path string) ([]Record, error) {
	recs, _, err := scanLog(path)
	return recs, err
}

// Recover is ReadAll plus repair: if the log has a torn tail, the file is
// truncated back to its last intact record, so a subsequent Open appends
// after valid frames instead of burying new records behind garbage.
func Recover(path string) ([]Record, error) {
	recs, valid, err := scanLog(path)
	if err != nil {
		return nil, err
	}
	if valid >= 0 {
		st, serr := os.Stat(path)
		if serr != nil {
			return nil, serr
		}
		if st.Size() > valid {
			if terr := os.Truncate(path, valid); terr != nil {
				return nil, terr
			}
		}
	}
	return recs, nil
}

// scanLog decodes intact records and reports the byte length of the valid
// prefix (-1 when the file is missing).
func scanLog(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, -1, nil
		}
		return nil, -1, err
	}
	if len(data) < len(magic) {
		return nil, 0, nil
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, -1, fmt.Errorf("wal: bad log header in %s", path)
	}
	data = data[len(magic):]
	valid := int64(len(magic))
	var out []Record
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n > maxRecord || len(data) < 8+int(n) {
			break // torn tail
		}
		payload := data[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn or corrupt tail
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		out = append(out, rec)
		data = data[8+n:]
		valid += int64(8 + n)
	}
	return out, valid, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}
