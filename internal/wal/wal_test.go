package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	recs := []Record{
		{Type: RecInsert, Tag: 100, Table: "t", Direct: true, Rows: []byte("rows-a")},
		{Type: RecDelete, Tag: 100, Epoch: 7, Table: "t", Rows: []byte("rows-b")},
		{Type: RecDDL, Op: 3, DDL: []byte(`{"name":"t"}`)},
		{Type: RecCommit, Tag: 100, Epoch: 8},
		{Type: RecAbort, Tag: 101},
		{Type: RecCheckpoint, Epoch: 8},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, want := range recs {
		g := got[i]
		if g.Type != want.Type || g.Tag != want.Tag || g.Epoch != want.Epoch ||
			g.Table != want.Table || g.Direct != want.Direct || g.Op != want.Op ||
			string(g.Rows) != string(want.Rows) || string(g.DDL) != string(want.DDL) {
			t.Errorf("record %d: got %+v, want %+v", i, g, want)
		}
	}
}

func TestReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	if err := l.Append(Record{Type: RecInsert, Tag: 1, Table: "a"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l = openT(t, path)
	if err := l.Append(Record{Type: RecCommit, Tag: 1, Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Table != "a" || got[1].Type != RecCommit {
		t.Fatalf("reopen lost records: %+v", got)
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	for i := uint64(1); i <= 3; i++ {
		if err := l.Append(Record{Type: RecInsert, Tag: i, Table: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	l.Close()
	// Tear the last frame mid-payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("torn tail: read %d records, want 2", len(got))
	}
	// Recover truncates the tear so appends after reopen are readable.
	if _, err := Recover(path); err != nil {
		t.Fatal(err)
	}
	l = openT(t, path)
	if err := l.Append(Record{Type: RecCommit, Tag: 2, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	l.Sync()
	l.Close()
	got, err = ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Type != RecCommit {
		t.Fatalf("post-recover append unreadable: %+v", got)
	}
}

func TestCorruptTailCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	l.Append(Record{Type: RecInsert, Tag: 1, Table: "t"})
	l.Append(Record{Type: RecInsert, Tag: 2, Table: "t"})
	l.Sync()
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff // flip a payload byte of the last frame
	os.WriteFile(path, data, 0o644)
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("corrupt tail: read %d records, want 1", len(got))
	}
}

func TestMissingFile(t *testing.T) {
	got, err := ReadAll(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || got != nil {
		t.Fatalf("missing file: got %v, %v", got, err)
	}
	if _, err := Recover(filepath.Join(t.TempDir(), "absent.log")); err != nil {
		t.Fatal(err)
	}
}

func TestFailAfterRecordsTearsAndPoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openT(t, path)
	l.FailAfterRecords(2)
	if err := l.Append(Record{Type: RecInsert, Tag: 1, Table: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := l.LogCommit(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: RecInsert, Tag: 2, Table: "t"}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third append: got %v, want ErrCrashed", err)
	}
	// Every later operation fails too.
	if err := l.LogCommit(2, 3); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash commit: got %v, want ErrCrashed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: got %v, want ErrCrashed", err)
	}
	// The survivors are the two pre-crash records; the torn frame is dropped.
	got, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Type != RecCommit {
		t.Fatalf("post-crash read: %+v", got)
	}
}

func TestSealCarriesPendingAndForwards(t *testing.T) {
	dir := t.TempDir()
	oldL := openT(t, filepath.Join(dir, "wal-1.log"))
	// Tag 10 commits (not pending), tag 11 aborts (not pending), tags 12/13
	// stay open and must carry over in original order.
	oldL.Append(Record{Type: RecInsert, Tag: 10, Table: "t"})
	oldL.LogCommit(10, 2)
	oldL.Append(Record{Type: RecInsert, Tag: 11, Table: "t"})
	oldL.LogAbort(11)
	oldL.Append(Record{Type: RecInsert, Tag: 12, Table: "t", Rows: []byte("x")})
	oldL.Append(Record{Type: RecDelete, Tag: 13, Epoch: 2, Table: "t", Rows: []byte("y")})
	oldL.Append(Record{Type: RecInsert, Tag: 12, Table: "t", Rows: []byte("z")})

	newPath := filepath.Join(dir, "wal-2.log")
	newL := openT(t, newPath)
	newL.Append(Record{Type: RecCheckpoint, Epoch: 2})
	if err := oldL.Seal(newL); err != nil {
		t.Fatal(err)
	}
	// A straggler append against the sealed log lands in the successor.
	if err := oldL.LogCommit(12, 3); err != nil {
		t.Fatal(err)
	}
	newL.Sync()
	newL.Close()

	got, err := ReadAll(newPath)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, r := range got {
		kinds = append(kinds, r.Type.String()+":"+string(r.Rows))
	}
	want := []string{"CHECKPOINT:", "INSERT:x", "DELETE:y", "INSERT:z", "COMMIT:"}
	if len(kinds) != len(want) {
		t.Fatalf("sealed log has %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("sealed log has %v, want %v", kinds, want)
		}
	}
	if got[4].Tag != 12 || got[4].Epoch != 3 {
		t.Fatalf("forwarded commit mangled: %+v", got[4])
	}
}

func TestPendingClearedOnCommitAndAbort(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, filepath.Join(dir, "wal-1.log"))
	l.Append(Record{Type: RecInsert, Tag: 20, Table: "t"})
	l.Append(Record{Type: RecInsert, Tag: 21, Table: "t"})
	l.LogCommit(20, 2)
	l.LogAbort(21)
	next := openT(t, filepath.Join(dir, "wal-2.log"))
	if err := l.Seal(next); err != nil {
		t.Fatal(err)
	}
	next.Sync()
	next.Close()
	got, err := ReadAll(filepath.Join(dir, "wal-2.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("finished transactions carried over: %+v", got)
	}
}
