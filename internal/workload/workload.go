// Package workload generates the paper's datasets (§4.1) at configurable
// scale, deterministically:
//
//   - D1: 100 columns of uniform random 8-byte floats in [0,1); the paper's
//     full size is 100M rows (140 GB as CSV). Variants: the extra integer
//     column in [0,100) the JDBC baseline needs for partitioning (§4.7.1),
//     and the reshaped 1-column × 10,000M-row variant of Figure 9.
//   - D2: (tweet_id INTEGER, tweet_text VARCHAR) synthetic tweets; the
//     paper's full size is 1.46B rows (140 GB as CSV).
//   - An Iris-like table for the model-deployment example (§3.3's
//     PMMLPredict query runs over IrisTable).
package workload

import (
	"fmt"
	"strings"

	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

// rng is splitmix64: deterministic, seekable by construction (reseed per
// row), so any partition can generate its slice independently.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// floatD1 quantizes to 9 decimal digits: D1's CSV footprint then matches the
// paper's 140 GB for 100M rows x 100 cols (~1.2-1.4 KB/row of text), instead
// of the ~2 KB/row that full shortest-round-trip float formatting produces.
func (r *rng) floatD1() float64 {
	return float64(int64(r.float()*1e9)) / 1e9
}

// rowSeed derives an independent stream seed for row i. The finalizer
// matters: seeding adjacent rows with arithmetically related states would
// make their value streams byte-aligned shifts of each other, which deflate
// then compresses absurdly well — silently breaking every transfer-volume
// measurement on "random" data.
func rowSeed(seed uint64, i int64) uint64 {
	z := seed + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// D1Schema returns the schema of D1 with the given column count (c0..cN-1,
// all FLOAT).
func D1Schema(cols int) types.Schema {
	var s types.Schema
	for i := 0; i < cols; i++ {
		s.Cols = append(s.Cols, types.Column{Name: fmt.Sprintf("c%d", i), T: types.Float64})
	}
	return s
}

// D1Row generates row i of D1 (cols float columns).
func D1Row(i int64, cols int, seed uint64) types.Row {
	g := rng{s: rowSeed(seed, i)}
	row := make(types.Row, cols)
	for c := range row {
		row[c] = types.FloatValue(g.floatD1())
	}
	return row
}

// D1Rows materializes rows [lo, hi) of D1.
func D1Rows(lo, hi int64, cols int, seed uint64) []types.Row {
	out := make([]types.Row, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, D1Row(i, cols, seed))
	}
	return out
}

// D1DataFrame builds a lazily generated DataFrame of D1: each partition
// generates its slice, so the driver never materializes the dataset.
func D1DataFrame(sc *spark.Context, rows int64, cols, parts int, seed uint64) *spark.DataFrame {
	rdd := spark.NewRDD(sc, parts, func(_ *spark.TaskContext, p int) ([]types.Row, error) {
		lo := rows * int64(p) / int64(parts)
		hi := rows * int64(p+1) / int64(parts)
		return D1Rows(lo, hi, cols, seed), nil
	})
	return spark.NewDataFrame(sc, D1Schema(cols), rdd)
}

// D1WithIntSchema is D1 plus the integer partition column the JDBC Default
// Source requires (§4.7.1: "we modify dataset D1 to add an integer column
// with randomly assigned values from [0-100)").
func D1WithIntSchema(cols int) types.Schema {
	s := D1Schema(cols)
	s.Cols = append([]types.Column{{Name: "pcol", T: types.Int64}}, s.Cols...)
	return s
}

// D1WithIntRow generates row i of the JDBC variant.
func D1WithIntRow(i int64, cols int, seed uint64) types.Row {
	g := rng{s: rowSeed(seed, i+1<<40)}
	row := make(types.Row, cols+1)
	row[0] = types.IntValue(int64(g.next() % 100))
	for c := 1; c <= cols; c++ {
		row[c] = types.FloatValue(g.floatD1())
	}
	return row
}

// D1WithIntDataFrame builds the JDBC variant lazily.
func D1WithIntDataFrame(sc *spark.Context, rows int64, cols, parts int, seed uint64) *spark.DataFrame {
	rdd := spark.NewRDD(sc, parts, func(_ *spark.TaskContext, p int) ([]types.Row, error) {
		lo := rows * int64(p) / int64(parts)
		hi := rows * int64(p+1) / int64(parts)
		out := make([]types.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, D1WithIntRow(i, cols, seed))
		}
		return out, nil
	})
	return spark.NewDataFrame(sc, D1WithIntSchema(cols), rdd)
}

var tweetWords = strings.Fields(`
big data fabric enterprise analytics spark vertica cluster query pipeline
stream model predict segment hash epoch commit stage load save partition
network shuffle columnar storage engine task executor node replica scan
`)

// D2Schema returns the tweet schema (§4.1).
func D2Schema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "tweet_id", T: types.Int64},
		types.Column{Name: "tweet_text", T: types.Varchar},
	)
}

// D2Row generates tweet i: an id plus ~90 bytes of synthetic text, matching
// D2's ~96-byte average row (140 GB / 1.46B rows).
func D2Row(i int64, seed uint64) types.Row {
	g := rng{s: rowSeed(seed, i+2<<40)}
	var b strings.Builder
	for b.Len() < 88 {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(tweetWords[g.next()%uint64(len(tweetWords))])
	}
	return types.Row{types.IntValue(i), types.StringValue(b.String())}
}

// D2DataFrame builds D2 lazily.
func D2DataFrame(sc *spark.Context, rows int64, parts int, seed uint64) *spark.DataFrame {
	rdd := spark.NewRDD(sc, parts, func(_ *spark.TaskContext, p int) ([]types.Row, error) {
		lo := rows * int64(p) / int64(parts)
		hi := rows * int64(p+1) / int64(parts)
		out := make([]types.Row, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, D2Row(i, seed))
		}
		return out, nil
	})
	return spark.NewDataFrame(sc, D2Schema(), rdd)
}

// CSVBytes renders rows as CSV (the on-HDFS representation of §4.1).
func CSVBytes(rows []types.Row) []byte {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(types.FormatCSV(r, ','))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// IrisSchema is the schema of the model-deployment example's table (§3.3).
func IrisSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "sepal_length", T: types.Float64},
		types.Column{Name: "sepal_width", T: types.Float64},
		types.Column{Name: "petal_length", T: types.Float64},
		types.Column{Name: "petal_width", T: types.Float64},
		types.Column{Name: "species", T: types.Int64},
	)
}

// IrisRows generates an Iris-like two-class dataset: class 0 small flowers,
// class 1 large, linearly separable with noise.
func IrisRows(n int, seed uint64) []types.Row {
	g := rng{s: seed}
	out := make([]types.Row, n)
	for i := range out {
		class := int64(i % 2)
		base := 4.5 + float64(class)*1.8
		out[i] = types.Row{
			types.FloatValue(base + g.float()),
			types.FloatValue(2.5 + g.float()*float64(class+1)*0.4),
			types.FloatValue(1.2 + float64(class)*3.3 + g.float()),
			types.FloatValue(0.2 + float64(class)*1.6 + g.float()*0.4),
			types.IntValue(class),
		}
	}
	return out
}
