package workload

import (
	"bytes"
	"compress/flate"
	"strings"
	"testing"

	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

func sc() *spark.Context {
	return spark.NewContext(spark.Conf{NumExecutors: 2, CoresPerExecutor: 4})
}

func TestD1Deterministic(t *testing.T) {
	a := D1Row(42, 10, 1)
	b := D1Row(42, 10, 1)
	for i := range a {
		if a[i].F != b[i].F {
			t.Fatal("D1 must be deterministic")
		}
	}
	c := D1Row(43, 10, 1)
	if a[0].F == c[0].F {
		t.Error("distinct rows should differ")
	}
	for _, v := range a {
		if v.F < 0 || v.F >= 1 {
			t.Errorf("value %v outside [0,1)", v.F)
		}
	}
}

// The regression this guards: adjacent rows' value streams must not be
// byte-aligned shifts of each other, or deflate "compresses" the random
// dataset away and every transfer measurement collapses.
func TestD1NotDeflatable(t *testing.T) {
	rows := D1Rows(0, 200, 100, 1)
	var raw bytes.Buffer
	for _, r := range rows {
		for _, v := range r {
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(uint64(v.F*float64(1<<62)) >> (8 * i))
			}
			raw.Write(b[:])
		}
	}
	var comp bytes.Buffer
	w, _ := flate.NewWriter(&comp, flate.DefaultCompression)
	_, _ = w.Write(raw.Bytes())
	_ = w.Close()
	if ratio := float64(comp.Len()) / float64(raw.Len()); ratio < 0.5 {
		t.Errorf("random data compressed to %.2f of raw — generator is not random enough", ratio)
	}
}

func TestD1CSVFootprint(t *testing.T) {
	// §4.1: D1 is 140 GB of CSV for 100M rows ⇒ ~1.2-1.5 KB/row.
	data := CSVBytes(D1Rows(0, 100, 100, 1))
	perRow := len(data) / 100
	if perRow < 900 || perRow > 1600 {
		t.Errorf("D1 CSV is %d B/row, want ~1.2-1.4 KB to match the paper's 140 GB", perRow)
	}
}

func TestD1DataFrameCoversAllRows(t *testing.T) {
	df := D1DataFrame(sc(), 100, 3, 7, 1)
	rows, err := df.Collect()
	if err != nil || len(rows) != 100 {
		t.Fatalf("rows = %d, %v", len(rows), err)
	}
	if df.Schema().NumCols() != 3 {
		t.Errorf("schema = %v", df.Schema())
	}
}

func TestD1WithInt(t *testing.T) {
	df := D1WithIntDataFrame(sc(), 500, 5, 4, 1)
	rows, err := df.Collect()
	if err != nil || len(rows) != 500 {
		t.Fatalf("rows = %d, %v", len(rows), err)
	}
	for _, r := range rows {
		if r[0].I < 0 || r[0].I >= 100 {
			t.Errorf("pcol %d outside [0,100)", r[0].I)
		}
	}
	if df.Schema().Cols[0].Name != "pcol" {
		t.Errorf("schema = %v", df.Schema())
	}
}

func TestD2Shape(t *testing.T) {
	r := D2Row(7, 1)
	if r[0].I != 7 {
		t.Errorf("tweet_id = %v", r[0])
	}
	if len(r[1].S) < 80 || len(r[1].S) > 120 {
		t.Errorf("tweet_text %d chars, want ~88-100 (140GB / 1.46B rows)", len(r[1].S))
	}
	df := D2DataFrame(sc(), 200, 4, 1)
	n, err := df.Count()
	if err != nil || n != 200 {
		t.Errorf("count = %d, %v", n, err)
	}
}

func TestCSVBytesParsable(t *testing.T) {
	rows := D1Rows(0, 10, 4, 1)
	data := CSVBytes(rows)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 10 {
		t.Fatalf("lines = %d", len(lines))
	}
	got, err := types.ParseCSV(lines[0], D1Schema(4), ',')
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].F != rows[0][i].F {
			t.Errorf("CSV round trip col %d: %v != %v", i, got[i], rows[0][i])
		}
	}
}

func TestIrisSeparable(t *testing.T) {
	rows := IrisRows(100, 1)
	if len(rows) != 100 {
		t.Fatal("wrong count")
	}
	// Class-1 petal lengths must all exceed class-0's (separability the MD
	// example depends on).
	max0, min1 := 0.0, 1e9
	for _, r := range rows {
		pl := r[2].F
		if r[4].I == 0 && pl > max0 {
			max0 = pl
		}
		if r[4].I == 1 && pl < min1 {
			min1 = pl
		}
	}
	if max0 >= min1 {
		t.Errorf("classes overlap on petal_length: max0=%v min1=%v", max0, min1)
	}
}
